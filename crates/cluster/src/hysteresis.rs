//! Per-run system state: the cause of performance hysteresis.
//!
//! The paper (§II-D) traces hysteresis to "changes in underlying system
//! states such as the mapping of logical memory, threads, and
//! connections to physical resources" — state frozen when the server
//! (re)starts and stable for the whole run. We reproduce it by drawing,
//! once per run:
//!
//! * each connection's **worker core** (a shuffled round-robin over all
//!   cores, as a restarted Memcached redistributes connections),
//! * each connection's **RSS queue** (the NIC hash over the connection
//!   tuple, whose ephemeral ports differ every restart),
//! * each connection's **buffer NUMA placement**, whose distribution
//!   depends on the NUMA policy under test.
//!
//! Because these draws are per-run, two runs of the *same* configuration
//! converge to different tail-latency values, no matter how many samples
//! each collects — exactly Figure 4.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::{HardwareConfig, Level, ServerSpec};

/// Frozen per-connection placement state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionState {
    /// The core whose worker thread services this connection.
    pub worker_core: u8,
    /// The NIC RSS queue this connection's packets hash to.
    pub rss_queue: u8,
    /// True if the connection's buffers were allocated on the NUMA node
    /// remote to its worker core.
    pub buffer_remote: bool,
}

/// All per-run placement state, indexed by `(client, conn)`.
#[derive(Debug, Clone)]
pub struct RunState {
    conn_offsets: Vec<u32>,
    states: Vec<ConnectionState>,
    remote_fraction: f64,
    service_factor: f64,
}

impl RunState {
    /// Draws fresh run state for a cluster with the given per-client
    /// connection counts.
    ///
    /// # Panics
    ///
    /// Panics if `connections_per_client` is empty or any entry is zero.
    // Core counts are bounded by ServerSpec's u8 fields, so the
    // core-id casts below cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    pub fn generate<R: Rng + ?Sized>(
        spec: &ServerSpec,
        hw: HardwareConfig,
        connections_per_client: &[u32],
        rng: &mut R,
    ) -> Self {
        assert!(
            !connections_per_client.is_empty(),
            "run state needs at least one client"
        );
        let total: u32 = connections_per_client.iter().sum();
        assert!(total > 0, "run state needs at least one connection");

        let mut conn_offsets = Vec::with_capacity(connections_per_client.len());
        let mut offset = 0;
        for &c in connections_per_client {
            assert!(c > 0, "client with zero connections");
            conn_offsets.push(offset);
            offset += c;
        }

        // Worker placement: shuffled round-robin over all cores.
        let cores = spec.total_cores() as u32;
        let mut core_order: Vec<u8> = (0..cores as u8).collect();
        core_order.shuffle(rng);

        // Buffer placement probability per policy. `same-node` mostly
        // succeeds (spilling occasionally under pressure); `interleave`
        // round-robins pages so most multi-page buffers straddle the
        // remote node (Finding 6). The per-run jitter term is a
        // deliberate hysteresis source.
        // The jitter width is itself policy-dependent: `same-node`
        // placements are deterministic-ish (small spill variation),
        // while `interleave` makes buffer placement hostage to the
        // allocator's per-restart state — a much bigger hysteresis
        // source. This is why the paper's tuned (same-node) system also
        // had far lower run-to-run variance (Figure 12).
        let h = &spec.hysteresis;
        let (base_remote, jitter_width) = match hw.numa {
            Level::Low => (h.remote_fraction_same_node, h.remote_jitter_same_node),
            Level::High => (h.remote_fraction_interleave, h.remote_jitter_interleave),
        };
        let jitter: f64 = if jitter_width > 0.0 {
            rng.gen_range(-jitter_width..jitter_width)
        } else {
            0.0
        };
        let remote_fraction = (base_remote + jitter).clamp(0.0, 1.0);

        // Run-wide service-time factor: code/heap/stack layout changes
        // across restarts perturb baseline performance (the paper cites
        // STABILIZER for exactly this effect). Queueing amplifies the
        // few-percent service shift into a much larger tail shift.
        let service_factor = if h.service_jitter > 0.0 {
            1.0 + rng.gen_range(-h.service_jitter..h.service_jitter)
        } else {
            1.0
        };

        let states = (0..total)
            .map(|i| ConnectionState {
                worker_core: core_order[(i % cores) as usize],
                rss_queue: rng.gen_range(0..spec.rss_queues),
                buffer_remote: rng.gen::<f64>() < remote_fraction,
            })
            .collect();

        RunState {
            conn_offsets,
            states,
            remote_fraction,
            service_factor,
        }
    }

    /// The placement state of connection `conn` of client `client`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn connection(&self, client: u32, conn: u32) -> ConnectionState {
        let base = self.conn_offsets[client as usize];
        self.states[(base + conn) as usize]
    }

    /// The run's realised remote-buffer probability (diagnostics).
    pub fn remote_fraction(&self) -> f64 {
        self.remote_fraction
    }

    /// The run-wide service-time factor (layout hysteresis).
    pub fn service_factor(&self) -> f64 {
        self.service_factor
    }

    /// Total connections across clients.
    pub fn total_connections(&self) -> usize {
        self.states.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn interleave_hw() -> HardwareConfig {
        HardwareConfig {
            numa: Level::High,
            ..Default::default()
        }
    }

    #[test]
    fn workers_cover_all_cores() {
        let spec = ServerSpec::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let state = RunState::generate(&spec, HardwareConfig::default(), &[32], &mut rng);
        let used: std::collections::BTreeSet<u8> =
            (0..32).map(|c| state.connection(0, c).worker_core).collect();
        assert_eq!(used.len(), 16, "32 conns round-robin over 16 cores");
    }

    #[test]
    fn interleave_places_more_buffers_remote() {
        let spec = ServerSpec::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let count_remote = |hw: HardwareConfig, rng: &mut SmallRng| -> usize {
            let state = RunState::generate(&spec, hw, &[512], rng);
            (0..512)
                .filter(|&c| state.connection(0, c).buffer_remote)
                .count()
        };
        let same_node = count_remote(HardwareConfig::default(), &mut rng);
        let interleave = count_remote(interleave_hw(), &mut rng);
        assert!(
            interleave > same_node * 3,
            "interleave {interleave} vs same-node {same_node}"
        );
    }

    #[test]
    fn runs_differ_but_seeds_reproduce() {
        let spec = ServerSpec::default();
        let a = RunState::generate(
            &spec,
            interleave_hw(),
            &[16, 16],
            &mut SmallRng::seed_from_u64(3),
        );
        let b = RunState::generate(
            &spec,
            interleave_hw(),
            &[16, 16],
            &mut SmallRng::seed_from_u64(4),
        );
        let a2 = RunState::generate(
            &spec,
            interleave_hw(),
            &[16, 16],
            &mut SmallRng::seed_from_u64(3),
        );
        let sig = |s: &RunState| -> Vec<(u8, u8, bool)> {
            (0..16)
                .map(|c| {
                    let st = s.connection(1, c);
                    (st.worker_core, st.rss_queue, st.buffer_remote)
                })
                .collect()
        };
        assert_eq!(sig(&a), sig(&a2), "same seed, same state");
        assert_ne!(sig(&a), sig(&b), "different seeds, different state");
    }

    #[test]
    fn remote_fraction_varies_between_runs() {
        let spec = ServerSpec::default();
        let fractions: Vec<f64> = (0..8)
            .map(|seed| {
                RunState::generate(
                    &spec,
                    interleave_hw(),
                    &[64],
                    &mut SmallRng::seed_from_u64(seed),
                )
                .remote_fraction()
            })
            .collect();
        let min = fractions.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fractions.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.02, "hysteresis spread {min}..{max} too small");
    }

    #[test]
    fn multi_client_indexing() {
        let spec = ServerSpec::default();
        let mut rng = SmallRng::seed_from_u64(5);
        let state = RunState::generate(
            &spec,
            HardwareConfig::default(),
            &[4, 8, 2],
            &mut rng,
        );
        assert_eq!(state.total_connections(), 14);
        // Last connection of last client is addressable.
        let _ = state.connection(2, 1);
    }

    #[test]
    #[should_panic(expected = "zero connections")]
    fn zero_connection_client_rejected() {
        let mut rng = SmallRng::seed_from_u64(6);
        RunState::generate(
            &ServerSpec::default(),
            HardwareConfig::default(),
            &[4, 0],
            &mut rng,
        );
    }
}
