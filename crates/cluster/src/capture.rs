//! The tcpdump-style packet capture view.
//!
//! The paper's evaluation (§III-C) validates each load tester against
//! "ground truth" measured by tcpdump on the load-test machines:
//! NIC-level timestamps matched by sequence id, which exclude
//! client-side queueing and kernel interrupt handling. The simulator
//! stamps every request at the client NIC in both directions, so the
//! capture is a *view* over completed-request records rather than a
//! separate probe — like tcpdump, it observes the same packets the load
//! tester sends, pinned to an idle core (zero probe effect).

use treadmill_sim_core::SimTime;

use crate::request::ResponseRecord;

/// A matched request/response pair as tcpdump would report it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapturedPair {
    /// When the request left the client NIC.
    pub tx: SimTime,
    /// When the response arrived at the client NIC.
    pub rx: SimTime,
}

impl CapturedPair {
    /// The NIC-to-NIC latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.rx.duration_since(self.tx).as_micros_f64()
    }
}

/// The tcpdump view over one or more clients' records.
///
/// Latencies are extracted and sorted once at construction, so every
/// quantile or CDF query afterwards is allocation-free — reports ask
/// for several quantiles per capture, and re-materialising (and
/// re-sorting) the latency vector per query dominated report time.
#[derive(Debug, Clone, Default)]
pub struct PacketCapture {
    /// NIC-to-NIC latencies (µs), sorted ascending.
    sorted_latencies_us: Vec<f64>,
}

impl PacketCapture {
    /// An empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Captures every record whose request was generated at or after
    /// `warmup` (matching the load tester's own discard window).
    pub fn from_records<'a>(
        records: impl IntoIterator<Item = &'a ResponseRecord>,
        warmup: SimTime,
    ) -> Self {
        let mut sorted_latencies_us: Vec<f64> = records
            .into_iter()
            .filter(|r| r.t_generated >= warmup)
            .map(|r| {
                CapturedPair {
                    tx: r.t_nic_out,
                    rx: r.t_nic_in,
                }
                .latency_us()
            })
            .collect();
        sorted_latencies_us.sort_by(f64::total_cmp);
        PacketCapture { sorted_latencies_us }
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.sorted_latencies_us.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.sorted_latencies_us.is_empty()
    }

    /// Ground-truth latencies in microseconds, sorted ascending.
    pub fn latencies_us(&self) -> &[f64] {
        &self.sorted_latencies_us
    }

    /// The ground-truth `p`-quantile in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the capture is empty.
    pub fn quantile_us(&self, p: f64) -> f64 {
        treadmill_stats::quantile::quantile_of_sorted(&self.sorted_latencies_us, p)
    }

    /// `(latency_us, cumulative_fraction)` points of the empirical CDF,
    /// thinned to at most `max_points` — the tcpdump curves in Figures
    /// 5–6.
    pub fn cdf_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let lat = &self.sorted_latencies_us;
        if lat.is_empty() {
            return Vec::new();
        }
        let n = lat.len();
        let stride = (n / max_points.max(1)).max(1);
        let mut points: Vec<(f64, f64)> = lat
            .iter()
            .enumerate()
            .step_by(stride)
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect();
        if points.last().map(|&(_, f)| f) != Some(1.0) {
            points.push((lat[n - 1], 1.0));
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, RequestId};
    use treadmill_workloads::{OpClass, RequestProfile};

    fn record(gen_us: u64, nic_out_us: u64, nic_in_us: u64) -> ResponseRecord {
        let mut req = Request::new(
            RequestId(gen_us),
            0,
            0,
            RequestProfile {
                class: OpClass::Read,
                request_bytes: 64,
                response_bytes: 64,
                cpu_ns: 1.0,
                mem_ns: 1.0,
            },
            SimTime::from_micros(gen_us),
        );
        req.t_client_nic_out = SimTime::from_micros(nic_out_us);
        req.t_server_nic_in = SimTime::from_micros(nic_out_us + 1);
        req.t_server_nic_out = SimTime::from_micros(nic_in_us - 1);
        req.t_client_nic_in = SimTime::from_micros(nic_in_us);
        req.t_delivered = SimTime::from_micros(nic_in_us + 20);
        ResponseRecord::from_request(&req)
    }

    #[test]
    fn captures_nic_latency() {
        let records = vec![record(0, 10, 60), record(5, 15, 115)];
        let cap = PacketCapture::from_records(&records, SimTime::ZERO);
        assert_eq!(cap.len(), 2);
        let lats = cap.latencies_us();
        assert_eq!(lats, vec![50.0, 100.0]);
        assert_eq!(cap.quantile_us(0.0), 50.0);
        assert_eq!(cap.quantile_us(1.0), 100.0);
    }

    #[test]
    fn warmup_filters_early_requests() {
        let records = vec![record(0, 10, 60), record(100, 110, 160)];
        let cap = PacketCapture::from_records(&records, SimTime::from_micros(50));
        assert_eq!(cap.len(), 1);
    }

    #[test]
    fn cdf_points_monotone_and_complete() {
        let records: Vec<ResponseRecord> =
            (0..100).map(|i| record(i, i + 10, i + 60 + i)).collect();
        let cap = PacketCapture::from_records(&records, SimTime::ZERO);
        let points = cap.cdf_points(10);
        assert!(points.len() <= 12);
        for pair in points.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(points.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_capture() {
        let cap = PacketCapture::new();
        assert!(cap.is_empty());
        assert!(cap.cdf_points(10).is_empty());
    }
}
