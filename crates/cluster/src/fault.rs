//! Deterministic fault injection and the client-side robustness policy.
//!
//! Real clusters drop packets, stall cores on GC-like pauses, overflow
//! NIC queues and occasionally lose whole servers — exactly the events
//! a production load tester must survive without corrupting the
//! quantiles it reports. This module provides the fault layer:
//!
//! * [`FaultSpec`] — declarative, serialisable fault probabilities and
//!   rates. The default is all-zero: a run with the default spec
//!   executes the *exact* same event and RNG sequence as a build
//!   without the fault subsystem, so golden-seed outputs stay
//!   bit-identical.
//! * [`FaultPlan`] — the per-run realisation. It owns a dedicated RNG
//!   stream (keyed `"faults"`, like the hysteresis state's
//!   `"hysteresis"` stream) so fault draws never perturb client or
//!   placement randomness, and pre-draws the whole-server crash
//!   windows at build time so they are reproducible regardless of
//!   traffic.
//! * [`RetryPolicy`] — the load tester's timeout / bounded-retry /
//!   hedging configuration. Backoff jitter is a pure hash of
//!   `(request id, attempt)` — deterministic, no RNG draw.
//! * [`FailureRecord`] — a request the tester gave up on. These are
//!   *right-censored* observations (the request would have taken at
//!   least this long) and feed the omission-correction estimator in
//!   `treadmill-core` instead of silently vanishing.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use treadmill_sim_core::{splitmix64, SimDuration, SimTime};

use crate::request::RequestId;

/// Declarative fault configuration for one simulated run.
///
/// All probabilities/rates default to zero, which disables the fault
/// subsystem entirely (no extra events, no RNG draws).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultSpec {
    /// Per-packet probability that a request is lost on a client
    /// uplink after serialisation (in `[0, 1]`).
    pub uplink_loss: f64,
    /// Per-packet probability that a response is lost between server
    /// egress and the client NIC (in `[0, 1]`).
    pub downlink_loss: f64,
    /// Server-NIC ingress buffer capacity in bytes; an arriving packet
    /// that would push the backlog past this is tail-dropped.
    /// `0` means unlimited (no overflow drops).
    pub nic_capacity_bytes: f64,
    /// Poisson rate (events per simulated second) of transient
    /// server-side stalls — GC pauses, SMIs — each freezing one
    /// randomly chosen core.
    pub stall_rate_hz: f64,
    /// Duration of each injected stall, microseconds.
    pub stall_us: f64,
    /// Poisson rate (events per simulated second) of whole-server
    /// crash/restart windows.
    pub crash_rate_hz: f64,
    /// Length of each crash window, microseconds. While down, queued
    /// and in-service jobs are lost and arriving packets are answered
    /// with a connection reset.
    pub crash_downtime_us: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            uplink_loss: 0.0,
            downlink_loss: 0.0,
            nic_capacity_bytes: 0.0,
            stall_rate_hz: 0.0,
            stall_us: 1_000.0,
            crash_rate_hz: 0.0,
            crash_downtime_us: 5_000.0,
        }
    }
}

impl FaultSpec {
    /// True if any fault channel is enabled. An inactive spec makes the
    /// builder skip plan generation entirely, preserving bit-identical
    /// no-fault behaviour.
    pub fn is_active(&self) -> bool {
        self.uplink_loss > 0.0
            || self.downlink_loss > 0.0
            || self.nic_capacity_bytes > 0.0
            || (self.stall_rate_hz > 0.0 && self.stall_us > 0.0)
            || self.crash_rate_hz > 0.0
    }

    /// Validates ranges, returning a human-readable message on error.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("uplink_loss", self.uplink_loss),
            ("downlink_loss", self.downlink_loss),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        for (name, v) in [
            ("nic_capacity_bytes", self.nic_capacity_bytes),
            ("stall_rate_hz", self.stall_rate_hz),
            ("stall_us", self.stall_us),
            ("crash_rate_hz", self.crash_rate_hz),
            ("crash_downtime_us", self.crash_downtime_us),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

/// Client-side robustness: per-request timeouts, bounded retries with
/// exponential backoff and deterministic jitter, and optional hedged
/// (duplicate) requests.
///
/// The default policy is fully disabled: requests are fire-and-forget
/// exactly as in the fault-free engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct RetryPolicy {
    /// Per-attempt timeout, microseconds. `0` disables timeouts (and
    /// with them retries).
    pub timeout_us: f64,
    /// Retries allowed after the first attempt times out or is reset.
    pub max_retries: u32,
    /// Base backoff before the first retry, microseconds.
    pub backoff_base_us: f64,
    /// Multiplier applied to the backoff per additional retry.
    pub backoff_factor: f64,
    /// Jitter fraction in `[0, 1)`: each backoff is stretched by up to
    /// this fraction, deterministically per `(request, attempt)`.
    pub jitter_frac: f64,
    /// Delay after which an unanswered request is hedged with a
    /// duplicate send, microseconds. `0` disables hedging.
    pub hedge_after_us: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_us: 0.0,
            max_retries: 0,
            backoff_base_us: 200.0,
            backoff_factor: 2.0,
            jitter_frac: 0.25,
            hedge_after_us: 0.0,
        }
    }
}

impl RetryPolicy {
    /// True if the policy changes client behaviour at all (timeouts or
    /// hedging are on).
    pub fn enabled(&self) -> bool {
        self.timeout_us > 0.0 || self.hedge_after_us > 0.0
    }

    /// The per-attempt timeout as a duration.
    pub fn timeout(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.timeout_us)
    }

    /// The hedge delay as a duration.
    pub fn hedge_delay(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.hedge_after_us)
    }

    /// The backoff before sending `attempt` (1 = first retry):
    /// `base · factor^(attempt−1)` stretched by deterministic jitter
    /// hashed from the request id — no RNG state is consumed, so the
    /// schedule is a pure function of `(policy, id, attempt)`.
    pub fn backoff(&self, id: RequestId, attempt: u32) -> SimDuration {
        let exponent = attempt.saturating_sub(1);
        let base = self.backoff_base_us * self.backoff_factor.powi(exponent as i32);
        let hash = splitmix64(id.0 ^ (u64::from(attempt) << 32) ^ 0x9e37_79b9_7f4a_7c15);
        let unit = (hash >> 11) as f64 / (1u64 << 53) as f64;
        SimDuration::from_micros_f64(base * (1.0 + self.jitter_frac * unit))
    }

    /// Validates ranges, returning a human-readable message on error.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("timeout_us", self.timeout_us),
            ("backoff_base_us", self.backoff_base_us),
            ("hedge_after_us", self.hedge_after_us),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(format!(
                "backoff_factor must be >= 1, got {}",
                self.backoff_factor
            ));
        }
        if !(0.0..1.0).contains(&self.jitter_frac) {
            return Err(format!(
                "jitter_frac must be in [0, 1), got {}",
                self.jitter_frac
            ));
        }
        if self.max_retries > 0 && self.timeout_us <= 0.0 {
            return Err("max_retries > 0 requires a positive timeout_us".into());
        }
        Ok(())
    }
}

/// Why the load tester gave up on a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Every attempt exceeded the per-attempt timeout.
    TimedOut,
    /// The server was down and reset the connection (retries, if any,
    /// were also exhausted).
    ConnectionReset,
}

/// A request the load tester abandoned. The elapsed time at abandonment
/// is a *lower bound* on the latency the request would have had — a
/// right-censored observation for the omission-correction estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureRecord {
    /// Request id.
    pub id: RequestId,
    /// Originating client.
    pub client: u32,
    /// Connection within the client.
    pub conn: u32,
    /// When the first attempt was generated.
    pub t_generated: SimTime,
    /// When the tester gave up.
    pub t_failed: SimTime,
    /// Attempts made (1 = no retries).
    pub attempts: u32,
    /// Failure cause.
    pub kind: FailureKind,
}

impl FailureRecord {
    /// The censoring value: elapsed user-space time at abandonment, µs.
    pub fn censored_latency_us(&self) -> f64 {
        self.t_failed.duration_since(self.t_generated).as_micros_f64()
    }
}

/// Aggregate fault-injection and robustness counters for one run.
/// All-zero when no faults were configured and the policy was disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Request packets lost on client uplinks.
    pub uplink_drops: u64,
    /// Response packets lost before the client NIC.
    pub downlink_drops: u64,
    /// Packets tail-dropped at the server-NIC ingress buffer.
    pub nic_drops: u64,
    /// Jobs lost to server crash windows (queued, in service, or
    /// arriving while down).
    pub crash_drops: u64,
    /// Crash windows that began during the run.
    pub crashes: u64,
    /// Transient core stalls injected.
    pub stalls: u64,
    /// Retry packets sent by clients.
    pub retries: u64,
    /// Hedged duplicate packets sent by clients.
    pub hedges: u64,
    /// Per-attempt timeouts that fired.
    pub timeouts: u64,
    /// Connection resets observed by clients.
    pub resets: u64,
    /// Logical requests abandoned (one per [`FailureRecord`]).
    pub failed_requests: u64,
}

impl FaultSummary {
    /// Total packets lost anywhere in the fabric or server.
    pub fn total_drops(&self) -> u64 {
        self.uplink_drops + self.downlink_drops + self.nic_drops + self.crash_drops
    }

    /// True if nothing fault-related happened.
    pub fn is_quiet(&self) -> bool {
        *self == FaultSummary::default()
    }
}

/// The per-run realisation of a [`FaultSpec`]: pre-drawn crash windows,
/// a dedicated RNG stream for online draws (packet loss, stall
/// placement), and counters.
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    rng: SmallRng,
    crash_windows: Vec<(SimTime, SimTime)>,
    crash_cursor: usize,
    last_crash_at: SimTime,
    first_stall: Option<SimTime>,
    uplink_drops: u64,
    downlink_drops: u64,
    nic_drops: u64,
    crash_drops: u64,
    crashes: u64,
    stalls: u64,
}

/// A [`FaultPlan`]'s mutable state, captured for checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FaultPlanState {
    pub rng: [u64; 4],
    pub crash_cursor: u64,
    pub last_crash_at: SimTime,
    pub uplink_drops: u64,
    pub downlink_drops: u64,
    pub nic_drops: u64,
    pub crash_drops: u64,
    pub crashes: u64,
    pub stalls: u64,
}

fn exp_gap(rng: &mut SmallRng, rate_hz: f64) -> SimDuration {
    let u: f64 = rng.gen::<f64>();
    let secs = -(1.0 - u).ln() / rate_hz;
    SimDuration::from_nanos_f64(secs * 1e9)
}

impl FaultPlan {
    /// Realises a spec over the sending window `[0, horizon]` using a
    /// dedicated RNG stream. Crash windows are drawn up front (a
    /// Poisson process thinned to non-overlapping windows); everything
    /// else draws online in event order, which is deterministic.
    pub fn generate(spec: FaultSpec, horizon: SimDuration, mut rng: SmallRng) -> Self {
        let end = SimTime::ZERO + horizon;
        let mut crash_windows = Vec::new();
        if spec.crash_rate_hz > 0.0 && spec.crash_downtime_us > 0.0 {
            let downtime = SimDuration::from_micros_f64(spec.crash_downtime_us);
            let mut t = SimTime::ZERO + exp_gap(&mut rng, spec.crash_rate_hz);
            while t <= end {
                crash_windows.push((t, t + downtime));
                t = t + downtime + exp_gap(&mut rng, spec.crash_rate_hz);
            }
        }
        let first_stall = if spec.stall_rate_hz > 0.0 && spec.stall_us > 0.0 {
            let t = SimTime::ZERO + exp_gap(&mut rng, spec.stall_rate_hz);
            (t <= end).then_some(t)
        } else {
            None
        };
        FaultPlan {
            spec,
            rng,
            crash_windows,
            crash_cursor: 0,
            last_crash_at: SimTime::ZERO,
            first_stall,
            uplink_drops: 0,
            downlink_drops: 0,
            nic_drops: 0,
            crash_drops: 0,
            crashes: 0,
            stalls: 0,
        }
    }

    /// The spec this plan realises.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Start instants of the pre-drawn crash windows (the builder
    /// schedules one crash event per window).
    pub fn crash_starts(&self) -> Vec<SimTime> {
        self.crash_windows.iter().map(|&(start, _)| start).collect()
    }

    /// When the first injected stall fires, if stalls are enabled and
    /// one lands inside the sending window.
    pub fn first_stall(&self) -> Option<SimTime> {
        self.first_stall
    }

    /// Rolls per-packet uplink loss. Draws RNG only when the
    /// probability is positive.
    pub fn drop_uplink(&mut self) -> bool {
        if self.spec.uplink_loss <= 0.0 {
            return false;
        }
        let dropped = self.rng.gen::<f64>() < self.spec.uplink_loss;
        self.uplink_drops += u64::from(dropped);
        dropped
    }

    /// Rolls per-packet downlink loss. Draws RNG only when the
    /// probability is positive.
    pub fn drop_downlink(&mut self) -> bool {
        if self.spec.downlink_loss <= 0.0 {
            return false;
        }
        let dropped = self.rng.gen::<f64>() < self.spec.downlink_loss;
        self.downlink_drops += u64::from(dropped);
        dropped
    }

    /// Tail-drop check for the server-NIC ingress: true if accepting
    /// `incoming_bytes` on top of `backlog_bytes` would exceed the
    /// configured capacity.
    pub fn nic_overflow(&mut self, backlog_bytes: f64, incoming_bytes: u32) -> bool {
        if self.spec.nic_capacity_bytes <= 0.0 {
            return false;
        }
        let overflow = backlog_bytes + f64::from(incoming_bytes) > self.spec.nic_capacity_bytes;
        self.nic_drops += u64::from(overflow);
        overflow
    }

    /// True if the server is inside a crash window at `now`. Queried
    /// with monotone `now` (event order), so a cursor suffices.
    pub fn server_down_at(&mut self, now: SimTime) -> bool {
        while self.crash_cursor < self.crash_windows.len()
            && self.crash_windows[self.crash_cursor].1 <= now
        {
            self.crash_cursor += 1;
        }
        self.crash_windows
            .get(self.crash_cursor)
            .is_some_and(|&(start, end)| start <= now && now < end)
    }

    /// Records that a crash window began at `now`.
    pub fn note_crash(&mut self, now: SimTime) {
        self.crashes += 1;
        self.last_crash_at = now;
    }

    /// When the most recent crash window began (`SimTime::ZERO` if
    /// none yet) — jobs started before this instant are lost.
    pub fn last_crash_at(&self) -> SimTime {
        self.last_crash_at
    }

    /// Adds to the count of jobs lost to crashes.
    pub fn add_crash_drops(&mut self, n: u64) {
        self.crash_drops += n;
    }

    /// Draws the target core and duration for an injected stall.
    pub fn draw_stall(&mut self, cores: usize) -> (usize, SimDuration) {
        self.stalls += 1;
        let core = self.rng.gen_range(0..cores);
        (core, SimDuration::from_micros_f64(self.spec.stall_us))
    }

    /// Draws the gap until the next injected stall.
    pub fn draw_stall_gap(&mut self) -> SimDuration {
        exp_gap(&mut self.rng, self.spec.stall_rate_hz)
    }

    /// Captures the plan's mutable state for checkpointing. The
    /// pre-drawn crash windows and first-stall instant are *not*
    /// included: they are a pure function of the spec and the seed
    /// stream, so a resumed run regenerates them via
    /// [`FaultPlan::generate`] and then overwrites the mutable state
    /// with [`FaultPlan::restore_checkpoint_state`].
    pub(crate) fn checkpoint_state(&self) -> FaultPlanState {
        FaultPlanState {
            rng: self.rng.state(),
            crash_cursor: self.crash_cursor as u64,
            last_crash_at: self.last_crash_at,
            uplink_drops: self.uplink_drops,
            downlink_drops: self.downlink_drops,
            nic_drops: self.nic_drops,
            crash_drops: self.crash_drops,
            crashes: self.crashes,
            stalls: self.stalls,
        }
    }

    /// Overwrites the plan's mutable state with a checkpointed
    /// [`FaultPlanState`]. The plan must have been regenerated from the
    /// same spec and seed stream.
    pub(crate) fn restore_checkpoint_state(&mut self, state: &FaultPlanState) {
        self.rng = SmallRng::from_state(state.rng);
        self.crash_cursor =
            usize::try_from(state.crash_cursor).unwrap_or(self.crash_windows.len());
        self.last_crash_at = state.last_crash_at;
        self.uplink_drops = state.uplink_drops;
        self.downlink_drops = state.downlink_drops;
        self.nic_drops = state.nic_drops;
        self.crash_drops = state.crash_drops;
        self.crashes = state.crashes;
        self.stalls = state.stalls;
    }

    /// The fabric/server-side counter snapshot (client-side counters
    /// live on the client machines).
    pub fn summary_base(&self) -> FaultSummary {
        FaultSummary {
            uplink_drops: self.uplink_drops,
            downlink_drops: self.downlink_drops,
            nic_drops: self.nic_drops,
            crash_drops: self.crash_drops,
            crashes: self.crashes,
            stalls: self.stalls,
            ..FaultSummary::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_spec_is_inactive_and_valid() {
        let spec = FaultSpec::default();
        assert!(!spec.is_active());
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn default_policy_is_disabled_and_valid() {
        let policy = RetryPolicy::default();
        assert!(!policy.enabled());
        assert!(policy.validate().is_ok());
    }

    #[test]
    fn spec_validation_rejects_bad_probability() {
        let spec = FaultSpec {
            uplink_loss: 1.5,
            ..FaultSpec::default()
        };
        assert!(spec.validate().unwrap_err().contains("uplink_loss"));
    }

    #[test]
    fn policy_validation_rejects_retries_without_timeout() {
        let policy = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        assert!(policy.validate().unwrap_err().contains("timeout_us"));
    }

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let policy = RetryPolicy {
            timeout_us: 1_000.0,
            max_retries: 3,
            backoff_base_us: 100.0,
            backoff_factor: 2.0,
            jitter_frac: 0.25,
            hedge_after_us: 0.0,
        };
        let id = RequestId(42);
        let b1 = policy.backoff(id, 1);
        let b2 = policy.backoff(id, 2);
        let b3 = policy.backoff(id, 3);
        assert!(b2 > b1 && b3 > b2, "{b1:?} {b2:?} {b3:?}");
        assert_eq!(b1, policy.backoff(id, 1), "jitter must be deterministic");
        // Jitter stays within the configured fraction of the base.
        assert!(b1 >= SimDuration::from_micros(100));
        assert!(b1 <= SimDuration::from_micros(125));
    }

    #[test]
    fn crash_windows_are_sorted_and_disjoint() {
        let spec = FaultSpec {
            crash_rate_hz: 2_000.0,
            crash_downtime_us: 300.0,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(
            spec,
            SimDuration::from_millis(50),
            SmallRng::seed_from_u64(7),
        );
        let windows = &plan.crash_windows;
        assert!(!windows.is_empty(), "2 kHz over 50 ms should crash");
        for pair in windows.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "windows overlap: {pair:?}");
        }
    }

    #[test]
    fn server_down_inside_window_only() {
        let spec = FaultSpec {
            crash_rate_hz: 1_000.0,
            crash_downtime_us: 200.0,
            ..FaultSpec::default()
        };
        let mut plan = FaultPlan::generate(
            spec,
            SimDuration::from_millis(50),
            SmallRng::seed_from_u64(3),
        );
        let (start, end) = plan.crash_windows[0];
        assert!(!plan.server_down_at(SimTime::ZERO));
        assert!(plan.server_down_at(start));
        assert!(!plan.server_down_at(end));
    }

    #[test]
    fn same_seed_same_plan() {
        let spec = FaultSpec {
            uplink_loss: 0.1,
            crash_rate_hz: 500.0,
            stall_rate_hz: 1_000.0,
            ..FaultSpec::default()
        };
        let mk = || {
            FaultPlan::generate(spec, SimDuration::from_millis(100), SmallRng::seed_from_u64(9))
        };
        let (mut a, mut b) = (mk(), mk());
        assert_eq!(a.crash_windows, b.crash_windows);
        assert_eq!(a.first_stall(), b.first_stall());
        for _ in 0..1_000 {
            assert_eq!(a.drop_uplink(), b.drop_uplink());
        }
    }

    #[test]
    fn zero_probability_channels_never_draw() {
        // An all-default spec paired with a plan must behave as a
        // no-op: no drops, no RNG consumption observable via counters.
        let mut plan = FaultPlan::generate(
            FaultSpec::default(),
            SimDuration::from_millis(10),
            SmallRng::seed_from_u64(1),
        );
        for _ in 0..100 {
            assert!(!plan.drop_uplink());
            assert!(!plan.drop_downlink());
            assert!(!plan.nic_overflow(1e12, 1_500));
        }
        assert!(plan.summary_base().is_quiet());
    }

    #[test]
    fn censored_latency_measures_elapsed_time() {
        let rec = FailureRecord {
            id: RequestId(1),
            client: 0,
            conn: 0,
            t_generated: SimTime::from_micros(100),
            t_failed: SimTime::from_micros(5_100),
            attempts: 3,
            kind: FailureKind::TimedOut,
        };
        assert_eq!(rec.censored_latency_us(), 5_000.0);
    }
}
