//! The simulated server: 16 cores on two sockets, NIC RSS, a DVFS
//! governor, a turbo/thermal model, and NUMA-sensitive service times.

pub mod core;
pub mod dvfs;
pub mod turbo;

use treadmill_sim_core::{SimDuration, SimTime};
use treadmill_workloads::RequestProfile;

use crate::config::{HardwareConfig, Level, ServerSpec};
use core::Core;
use turbo::ThermalModel;

/// The server under test.
#[derive(Debug)]
pub struct Server {
    spec: ServerSpec,
    hw: HardwareConfig,
    /// The CPU cores; index = core id.
    pub cores: Vec<Core>,
    thermal: ThermalModel,
    prev_busy: Vec<SimDuration>,
    last_thermal: SimTime,
    freq_trace: Option<Vec<FrequencyEvent>>,
}

/// One recorded frequency transition (when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyEvent {
    /// When the governor applied the change.
    pub at: SimTime,
    /// The core whose frequency changed.
    pub core: u8,
    /// The new frequency, GHz.
    pub ghz: f64,
}

impl Server {
    /// Builds a cold server in the given hardware configuration.
    // Core ids fit u8: ServerSpec bounds cores with u8 fields.
    #[allow(clippy::cast_possible_truncation)]
    pub fn new(spec: ServerSpec, hw: HardwareConfig) -> Self {
        let initial_freq = match hw.dvfs {
            // performance: start at the max available frequency.
            Level::High => {
                if hw.turbo.is_high() {
                    spec.turbo_ghz
                } else {
                    spec.base_ghz
                }
            }
            // ondemand: start at base — the governor retargets from its
            // first sampling window (starting at the minimum step would
            // inject a cold-start backlog transient into every run).
            Level::Low => spec.base_ghz,
        };
        let cores = (0..spec.total_cores())
            .map(|i| Core::new(i as u8, spec.socket_of(i), initial_freq))
            .collect::<Vec<_>>();
        let thermal = ThermalModel::new(
            spec.base_ghz,
            spec.turbo_ghz,
            hw.turbo.is_high(),
            spec.thermal_tau_s,
            spec.thermal_throttle_start,
        );
        let prev_busy = vec![SimDuration::ZERO; cores.len()];
        Server {
            spec,
            hw,
            cores,
            thermal,
            prev_busy,
            last_thermal: SimTime::ZERO,
            freq_trace: None,
        }
    }

    /// Enables recording of every governor frequency transition.
    pub fn enable_frequency_trace(&mut self) {
        self.freq_trace = Some(Vec::new());
    }

    /// The recorded frequency transitions, if tracing was enabled.
    pub fn frequency_trace(&self) -> Option<&[FrequencyEvent]> {
        self.freq_trace.as_deref()
    }

    /// The server specification.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// The hardware configuration under test.
    pub fn hardware(&self) -> HardwareConfig {
        self.hw
    }

    /// The thermal model (for diagnostics).
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// Which core handles interrupts for an RSS queue, under the NIC
    /// affinity policy (Table III): `same-node` maps every queue to
    /// socket-0 cores; `all-nodes` spreads queues across both sockets.
    pub fn rss_core(&self, queue: u8) -> usize {
        let per_socket = usize::from(self.spec.cores_per_socket);
        match self.hw.nic {
            Level::Low => usize::from(queue) % per_socket,
            Level::High => usize::from(queue) % self.spec.total_cores(),
        }
    }

    /// Interrupt-handling duration on `core` at its current frequency.
    /// Handling on a socket other than the NIC's attachment (socket 0)
    /// pays a cross-socket penalty for the DMA'd packet data.
    pub fn irq_duration(&self, core: usize) -> SimDuration {
        let c = &self.cores[core];
        let scale = self.spec.base_ghz / c.freq_ghz();
        let mut ns = self.spec.irq_ns * scale;
        if c.socket != 0 {
            ns += self.spec.irq_cross_socket_ns;
        }
        SimDuration::from_nanos_f64(ns)
    }

    /// Worker service duration for a request on `core`: the CPU
    /// component scales with the core's current frequency, the memory
    /// component is inflated by the remote-NUMA penalty when the
    /// connection's buffer is remote, and a cross-socket handoff fee
    /// applies when the interrupt arrived on the other socket.
    pub fn service_duration(
        &self,
        core: usize,
        profile: &RequestProfile,
        buffer_remote: bool,
        handoff_cross_socket: bool,
    ) -> SimDuration {
        let c = &self.cores[core];
        let cpu = profile.cpu_ns * self.spec.base_ghz / c.freq_ghz();
        let mem = profile.mem_ns
            * if buffer_remote {
                self.spec.numa_remote_penalty
            } else {
                1.0
            };
        let handoff = if handoff_cross_socket {
            self.spec.handoff_cross_socket_ns
        } else {
            0.0
        };
        SimDuration::from_nanos_f64(cpu + mem + handoff)
    }

    /// Runs one governor sampling tick: re-targets every core's
    /// frequency from its window utilisation, inserting a transition
    /// stall on cores whose frequency changed. Returns the ids of cores
    /// that received a stall (the caller must poke their run loops).
    // Core ids fit u8: ServerSpec bounds cores with u8 fields.
    #[allow(clippy::cast_possible_truncation)]
    pub fn governor_tick(&mut self, now: SimTime) -> Vec<usize> {
        let max_avail = self.thermal.available_ghz();
        let mut stalled = Vec::new();
        for (i, core) in self.cores.iter_mut().enumerate() {
            let util = core.util.window_utilization(now);
            let target = dvfs::governor_target(
                self.hw.dvfs,
                util,
                self.spec.min_ghz,
                max_avail,
                self.spec.ondemand_up_threshold,
            );
            // Deadband: ignore sub-threshold retargets so thermal
            // jitter does not cause a transition storm.
            if (target - core.freq_ghz()).abs() < self.spec.governor_deadband_ghz {
                core.util.restart_window(now);
                continue;
            }
            if core.set_freq(target) {
                core.enqueue_front(core::CoreJob::Stall(self.spec.frequency_transition));
                stalled.push(i);
                if let Some(trace) = &mut self.freq_trace {
                    trace.push(FrequencyEvent {
                        at: now,
                        core: i as u8,
                        ghz: target,
                    });
                }
            }
            core.util.restart_window(now);
        }
        stalled
    }

    /// Runs one thermal tick: integrates busy time since the last tick
    /// into the package heat state.
    pub fn thermal_tick(&mut self, now: SimTime) {
        let dt = now.saturating_duration_since(self.last_thermal);
        if dt.is_zero() {
            return;
        }
        let dt_s = dt.as_secs_f64();
        let n = self.cores.len() as f64;
        let mut util_sum = 0.0;
        let mut freq_sum = 0.0;
        for (i, core) in self.cores.iter().enumerate() {
            let busy = core.util.busy_total();
            let delta = busy - self.prev_busy[i];
            self.prev_busy[i] = busy;
            util_sum += (delta.as_secs_f64() / dt_s).min(1.0);
            freq_sum += core.freq_ghz();
        }
        self.thermal.advance(dt_s, util_sum / n, freq_sum / n);
        self.last_thermal = now;
    }

    /// Picks the core that should run a worker job whose connection is
    /// pinned to `preferred`: normally `preferred` itself, but when its
    /// run queue is at least `balance_threshold` deep, the shallowest
    /// queue on the same socket takes the job (kernel load balancing).
    pub fn balanced_worker_core(&self, preferred: usize) -> usize {
        let threshold = self.spec.balance_threshold;
        let depth = |c: &Core| c.queue_len() + usize::from(c.is_busy());
        if depth(&self.cores[preferred]) < threshold {
            return preferred;
        }
        // First balance within the socket (cheap migration, preserves
        // NUMA locality); if the whole socket is deep, migrate anywhere
        // — exactly the escalation CFS performs under pressure. One
        // manual pass finds both minima (this runs for every worker
        // dispatch once the server is loaded); strict `<` keeps the
        // first-minimum tie-break the iterator version had.
        let socket = self.cores[preferred].socket;
        let mut same_socket = preferred;
        let mut same_socket_depth = usize::MAX;
        let mut global = preferred;
        let mut global_depth = usize::MAX;
        for (i, c) in self.cores.iter().enumerate() {
            let d = depth(c);
            if d < global_depth {
                global = i;
                global_depth = d;
            }
            if c.socket == socket && d < same_socket_depth {
                same_socket = i;
                same_socket_depth = d;
            }
        }
        if same_socket_depth < threshold {
            return same_socket;
        }
        global
    }

    /// The server-level mutable state outside the cores (thermal model,
    /// per-core busy baselines, tick bookkeeping, optional frequency
    /// trace), captured for checkpointing.
    pub(crate) fn checkpoint_state(
        &self,
    ) -> (f64, &[SimDuration], SimTime, Option<&[FrequencyEvent]>) {
        (
            self.thermal.heat(),
            &self.prev_busy,
            self.last_thermal,
            self.freq_trace.as_deref(),
        )
    }

    /// Restores the state captured by [`Server::checkpoint_state`].
    /// The server must have been rebuilt with the same spec and
    /// hardware configuration.
    ///
    /// # Panics
    ///
    /// Panics if the busy-baseline count does not match the core count.
    pub(crate) fn restore_checkpoint_state(
        &mut self,
        heat: f64,
        prev_busy: Vec<SimDuration>,
        last_thermal: SimTime,
        freq_trace: Option<Vec<FrequencyEvent>>,
    ) {
        assert_eq!(prev_busy.len(), self.cores.len(), "busy-baseline count mismatch");
        self.thermal.restore_heat(heat);
        self.prev_busy = prev_busy;
        self.last_thermal = last_thermal;
        self.freq_trace = freq_trace;
    }

    /// Mean utilisation across cores over `[0, now]`.
    pub fn mean_utilization(&self, now: SimTime) -> f64 {
        let n = self.cores.len() as f64;
        self.cores.iter().map(|c| c.util.utilization(now)).sum::<f64>() / n
    }

    /// Total frequency transitions across cores.
    pub fn total_transitions(&self) -> u64 {
        self.cores.iter().map(Core::transitions).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw(numa: bool, turbo: bool, dvfs: bool, nic: bool) -> HardwareConfig {
        HardwareConfig {
            numa: Level::from_bit(numa),
            turbo: Level::from_bit(turbo),
            dvfs: Level::from_bit(dvfs),
            nic: Level::from_bit(nic),
        }
    }

    fn profile() -> RequestProfile {
        RequestProfile {
            class: treadmill_workloads::OpClass::Read,
            request_bytes: 64,
            response_bytes: 128,
            cpu_ns: 10_000.0,
            mem_ns: 4_000.0,
        }
    }

    #[test]
    fn rss_same_node_stays_on_socket_zero() {
        let server = Server::new(ServerSpec::default(), hw(false, false, false, false));
        for q in 0..16 {
            let core = server.rss_core(q);
            assert_eq!(server.cores[core].socket, 0, "queue {q} → core {core}");
        }
    }

    #[test]
    fn rss_all_nodes_spreads_sockets() {
        let server = Server::new(ServerSpec::default(), hw(false, false, false, true));
        let sockets: std::collections::BTreeSet<u8> =
            (0..16).map(|q| server.cores[server.rss_core(q)].socket).collect();
        assert_eq!(sockets.len(), 2);
    }

    #[test]
    fn irq_costs_more_cross_socket() {
        let server = Server::new(ServerSpec::default(), hw(false, false, true, true));
        let local = server.irq_duration(0);
        let remote = server.irq_duration(8);
        assert!(remote > local);
    }

    #[test]
    fn service_duration_components() {
        // performance governor, no turbo: all cores at base frequency.
        let server = Server::new(ServerSpec::default(), hw(false, false, true, false));
        let p = profile();
        let plain = server.service_duration(0, &p, false, false);
        assert_eq!(plain, SimDuration::from_nanos(14_000));
        let remote = server.service_duration(0, &p, true, false);
        assert_eq!(
            remote,
            SimDuration::from_nanos(10_000 + (4_000.0 * 1.8) as u64)
        );
        let handoff = server.service_duration(0, &p, false, true);
        assert!(handoff > plain);
    }

    #[test]
    fn turbo_speeds_up_cpu_component() {
        // performance + turbo: cores start at 3.0 GHz.
        let server = Server::new(ServerSpec::default(), hw(false, true, true, false));
        let p = profile();
        let fast = server.service_duration(0, &p, false, false);
        // cpu 10000 * 2.2/3.0 ≈ 7333; mem unchanged at 4000.
        let expected = 10_000.0 * 2.2 / 3.0 + 4_000.0;
        assert!((fast.as_nanos() as f64 - expected).abs() < 2.0);
    }

    #[test]
    fn initial_frequencies() {
        let ondemand = Server::new(ServerSpec::default(), hw(false, false, false, false));
        assert_eq!(ondemand.cores[0].freq_ghz(), 2.2);
        let perf = Server::new(ServerSpec::default(), hw(false, true, true, false));
        assert_eq!(perf.cores[0].freq_ghz(), 3.0);
    }

    #[test]
    fn ondemand_downclocks_idle_cores_after_first_tick() {
        let mut server = Server::new(ServerSpec::default(), hw(false, false, false, false));
        let stalled = server.governor_tick(SimTime::from_millis(10));
        assert!(stalled.contains(&3), "idle core should transition down");
        assert_eq!(server.cores[3].freq_ghz(), 1.2);
    }

    #[test]
    fn governor_tick_tracks_window_utilisation() {
        let mut server = Server::new(ServerSpec::default(), hw(false, false, false, false));
        // Core 0 fully busy over the window: stays at the max (base)
        // frequency with no transition.
        server.cores[0]
            .util
            .record_busy(SimTime::ZERO, SimDuration::from_millis(10));
        let stalled = server.governor_tick(SimTime::from_millis(10));
        assert!(!stalled.contains(&0));
        assert_eq!(server.cores[0].freq_ghz(), 2.2);
        // Idle cores get down-clocked to the minimum, paying a
        // transition stall.
        assert!(stalled.contains(&5));
        assert_eq!(server.cores[5].freq_ghz(), 1.2);
    }

    #[test]
    fn thermal_tick_integrates_busy_time() {
        let mut server = Server::new(ServerSpec::default(), hw(false, true, true, false));
        for i in 0..16 {
            server.cores[i]
                .util
                .record_busy(SimTime::ZERO, SimDuration::from_millis(1));
        }
        for step in 1..=200u64 {
            server.thermal_tick(SimTime::from_millis(step));
            for i in 0..16 {
                server.cores[i].util.record_busy(
                    SimTime::from_millis(step),
                    SimDuration::from_millis(1),
                );
            }
        }
        // Fully busy at turbo for 200ms (4 time constants): throttled.
        assert!(server.thermal().heat() > 0.55, "heat {}", server.thermal().heat());
        assert!(server.thermal().available_ghz() < 3.0);
    }

    #[test]
    fn mean_utilization_averages_cores() {
        let mut server = Server::new(ServerSpec::default(), hw(false, false, true, false));
        server.cores[0]
            .util
            .record_busy(SimTime::ZERO, SimDuration::from_micros(160));
        // One of 16 cores busy 160us over 160us elapsed: mean = 1/16.
        let mean = server.mean_utilization(SimTime::from_micros(160));
        assert!((mean - 1.0 / 16.0).abs() < 1e-9);
    }
}
