//! DVFS governor models (Table III: `ondemand` vs `performance`).

use crate::config::Level;

/// Width of a discrete DVFS frequency step, in GHz. Real P-state tables
/// step in 100 MHz increments.
pub const FREQ_STEP_GHZ: f64 = 0.1;

/// Computes the frequency a governor targets for a core, given the
/// core's utilisation over the last sampling window.
///
/// * `performance` (high level) always targets the maximum available
///   frequency (which includes turbo headroom when Turbo Boost is on).
/// * `ondemand` (low level) jumps to the maximum when window utilisation
///   exceeds `up_threshold`, and otherwise scales the frequency
///   proportionally between `min_ghz` and the maximum — the classic
///   Linux `ondemand` policy. The proportional region is what causes
///   requests at low load to execute at reduced frequency (the paper's
///   Finding 3).
///
/// The result is quantised to [`FREQ_STEP_GHZ`] steps so that governor
/// decisions produce discrete frequency *transitions* (each of which
/// stalls the core briefly).
///
/// # Panics
///
/// Panics if `min_ghz > max_available_ghz`.
pub fn governor_target(
    governor: Level,
    window_util: f64,
    min_ghz: f64,
    max_available_ghz: f64,
    up_threshold: f64,
) -> f64 {
    assert!(
        min_ghz <= max_available_ghz,
        "min frequency {min_ghz} exceeds available max {max_available_ghz}"
    );
    let target = match governor {
        Level::High => max_available_ghz, // performance
        Level::Low => {
            // ondemand
            let util = window_util.clamp(0.0, 1.0);
            if util >= up_threshold {
                max_available_ghz
            } else {
                min_ghz + (max_available_ghz - min_ghz) * (util / up_threshold)
            }
        }
    };
    quantize(target, min_ghz, max_available_ghz)
}

fn quantize(ghz: f64, min_ghz: f64, max_ghz: f64) -> f64 {
    // Round in deci-GHz integer space to avoid float-step residue
    // (12 × 0.1 ≠ 1.2 in binary floating point).
    let stepped = (ghz * 10.0).round() / 10.0;
    stepped.clamp(min_ghz, max_ghz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_always_max() {
        for util in [0.0, 0.3, 0.99] {
            assert_eq!(governor_target(Level::High, util, 1.2, 3.0, 0.6), 3.0);
        }
    }

    #[test]
    fn ondemand_jumps_at_threshold() {
        assert_eq!(governor_target(Level::Low, 0.7, 1.2, 2.2, 0.6), 2.2);
        assert_eq!(governor_target(Level::Low, 0.6, 1.2, 2.2, 0.6), 2.2);
    }

    #[test]
    fn ondemand_scales_proportionally_below_threshold() {
        let at_zero = governor_target(Level::Low, 0.0, 1.2, 2.2, 0.6);
        let at_half = governor_target(Level::Low, 0.3, 1.2, 2.2, 0.6);
        assert_eq!(at_zero, 1.2);
        // Halfway to threshold: min + (max-min)/2 = 1.7.
        assert!((at_half - 1.7).abs() < FREQ_STEP_GHZ / 2.0 + 1e-12);
        assert!(at_half > at_zero);
    }

    #[test]
    fn quantised_to_steps() {
        let f = governor_target(Level::Low, 0.17, 1.2, 2.2, 0.6);
        let steps = f / FREQ_STEP_GHZ;
        assert!((steps - steps.round()).abs() < 1e-9, "freq {f} not on a step");
    }

    #[test]
    fn ondemand_respects_turbo_ceiling() {
        // With turbo available the max rises; ondemand at high util
        // should use it.
        assert_eq!(governor_target(Level::Low, 0.9, 1.2, 3.0, 0.6), 3.0);
    }

    #[test]
    fn util_clamped() {
        assert_eq!(governor_target(Level::Low, 7.0, 1.2, 2.2, 0.6), 2.2);
        assert_eq!(governor_target(Level::Low, -1.0, 1.2, 2.2, 0.6), 1.2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn inverted_range_rejected() {
        governor_target(Level::Low, 0.5, 3.0, 2.0, 0.6);
    }
}
