//! Turbo Boost / package-thermal model.
//!
//! Turbo frequency "heavily depends on the dynamic power and thermal
//! status" (§IV-B). We model the package as a first-order thermal
//! system: normalised heat `h` relaxes toward an input level that grows
//! with aggregate core activity and super-linearly with frequency
//! (dynamic power ≈ f·V² ≈ f³ along the V/f curve). Turbo headroom is
//! full below a throttle threshold and shrinks linearly to zero (base
//! frequency) as `h` approaches 1.
//!
//! This produces the two behaviours the paper reports:
//! * Finding 8 — turbo helps a lot at low load (cool package, full
//!   headroom) and little at high load;
//! * the `turbo:dvfs` interaction — a `performance` governor keeps
//!   frequency pinned high, heating the package and eroding the very
//!   headroom turbo needs.

/// The package thermal state and turbo-frequency calculator.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    base_ghz: f64,
    turbo_ghz: f64,
    turbo_enabled: bool,
    tau_s: f64,
    throttle_start: f64,
    heating_gain: f64,
    heat: f64,
}

impl ThermalModel {
    /// Creates a cold package.
    ///
    /// # Panics
    ///
    /// Panics if `turbo_ghz < base_ghz` or parameters are non-positive.
    pub fn new(
        base_ghz: f64,
        turbo_ghz: f64,
        turbo_enabled: bool,
        tau_s: f64,
        throttle_start: f64,
    ) -> Self {
        assert!(turbo_ghz >= base_ghz, "turbo must not be below base");
        assert!(tau_s > 0.0 && throttle_start > 0.0 && throttle_start < 1.0);
        ThermalModel {
            base_ghz,
            turbo_ghz,
            turbo_enabled,
            tau_s,
            throttle_start,
            heating_gain: 0.85,
            heat: 0.0,
        }
    }

    /// Current normalised heat in `[0, ~1.5]`.
    pub fn heat(&self) -> f64 {
        self.heat
    }

    /// Advances the thermal state by `dt_s` seconds given the package's
    /// average core utilisation and average operating frequency over
    /// that interval.
    pub fn advance(&mut self, dt_s: f64, avg_util: f64, avg_freq_ghz: f64) {
        debug_assert!(dt_s >= 0.0);
        let rel_freq = (avg_freq_ghz / self.base_ghz).max(0.0);
        let input = self.heating_gain * avg_util.clamp(0.0, 1.0) * rel_freq.powi(3);
        let alpha = 1.0 - (-dt_s / self.tau_s).exp();
        self.heat += (input - self.heat) * alpha;
    }

    /// The maximum frequency currently available, in GHz.
    ///
    /// With turbo disabled this is always the base frequency. With turbo
    /// enabled it is the full turbo frequency while the package is cool,
    /// shrinking linearly to base as heat rises past the throttle point.
    pub fn available_ghz(&self) -> f64 {
        if !self.turbo_enabled {
            return self.base_ghz;
        }
        if self.heat <= self.throttle_start {
            return self.turbo_ghz;
        }
        let over = ((self.heat - self.throttle_start) / (1.0 - self.throttle_start))
            .clamp(0.0, 1.0);
        self.turbo_ghz - (self.turbo_ghz - self.base_ghz) * over
    }

    /// True if turbo is enabled in this configuration.
    pub fn turbo_enabled(&self) -> bool {
        self.turbo_enabled
    }

    /// Overwrites the heat state from a checkpoint. All other fields
    /// are configuration and survive a rebuild unchanged.
    pub(crate) fn restore_heat(&mut self, heat: f64) {
        self.heat = heat;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(enabled: bool) -> ThermalModel {
        ThermalModel::new(2.2, 3.0, enabled, 0.05, 0.55)
    }

    #[test]
    fn disabled_turbo_pins_base() {
        let mut m = model(false);
        m.advance(1.0, 1.0, 3.0);
        assert_eq!(m.available_ghz(), 2.2);
    }

    #[test]
    fn cold_package_gives_full_turbo() {
        let m = model(true);
        assert_eq!(m.available_ghz(), 3.0);
    }

    #[test]
    fn sustained_high_load_erodes_headroom() {
        let mut m = model(true);
        // Run hot for many time constants: util 0.9 at turbo frequency.
        for _ in 0..100 {
            m.advance(0.01, 0.9, 3.0);
        }
        let hot = m.available_ghz();
        assert!(hot < 3.0, "headroom should shrink, got {hot}");
        assert!(hot >= 2.2, "never below base");
    }

    #[test]
    fn low_load_keeps_full_turbo() {
        let mut m = model(true);
        for _ in 0..100 {
            m.advance(0.01, 0.1, 3.0);
        }
        assert_eq!(m.available_ghz(), 3.0, "heat {}", m.heat());
    }

    #[test]
    fn package_cools_when_idle() {
        let mut m = model(true);
        for _ in 0..100 {
            m.advance(0.01, 1.0, 3.0);
        }
        let throttled = m.available_ghz();
        for _ in 0..100 {
            m.advance(0.01, 0.0, 2.2);
        }
        assert!(m.available_ghz() > throttled, "cooling should restore turbo");
        assert!(m.heat() < 0.1);
    }

    #[test]
    fn higher_frequency_heats_faster() {
        let mut slow = model(true);
        let mut fast = model(true);
        for _ in 0..20 {
            slow.advance(0.01, 0.7, 2.2);
            fast.advance(0.01, 0.7, 3.0);
        }
        assert!(fast.heat() > slow.heat() * 1.5);
    }

    #[test]
    #[should_panic(expected = "below base")]
    fn inverted_frequencies_rejected() {
        ThermalModel::new(3.0, 2.2, true, 0.05, 0.55);
    }
}
