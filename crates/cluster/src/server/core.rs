//! A simulated CPU core: a FIFO run queue, a current frequency, and
//! busy-time accounting.

use std::collections::VecDeque;

use treadmill_sim_core::{SimDuration, SimTime, UtilizationTracker};

use crate::request::Request;

/// A unit of work on a core's run queue.
///
/// Requests are boxed: a job travels through run queues and the event
/// heap, and a thin pointer keeps those moves (and heap sifts) cheap.
#[derive(Debug)]
pub enum CoreJob {
    /// Kernel interrupt handling for an inbound request packet.
    Irq(Box<Request>),
    /// Worker-thread servicing of a request.
    Work(Box<Request>),
    /// A frequency-transition stall: the core is unavailable while the
    /// voltage/frequency ramp completes.
    Stall(SimDuration),
}

/// One CPU core.
#[derive(Debug)]
pub struct Core {
    /// Core index.
    pub id: u8,
    /// NUMA socket this core belongs to.
    pub socket: u8,
    queue: VecDeque<CoreJob>,
    busy: bool,
    freq_ghz: f64,
    /// Cumulative + windowed busy-time accounting.
    pub util: UtilizationTracker,
    jobs_done: u64,
    transitions: u64,
}

impl Core {
    /// Creates an idle core at the given frequency.
    pub fn new(id: u8, socket: u8, freq_ghz: f64) -> Self {
        Core {
            id,
            socket,
            queue: VecDeque::new(),
            busy: false,
            freq_ghz,
            util: UtilizationTracker::new(),
            jobs_done: 0,
            transitions: 0,
        }
    }

    /// Current operating frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Changes the operating frequency, returning `true` if it actually
    /// changed (callers insert a [`CoreJob::Stall`] when it did).
    pub fn set_freq(&mut self, ghz: f64) -> bool {
        if (self.freq_ghz - ghz).abs() < 1e-9 {
            return false;
        }
        self.freq_ghz = ghz;
        self.transitions += 1;
        true
    }

    /// Appends a job to the run queue.
    pub fn enqueue(&mut self, job: CoreJob) {
        self.queue.push_back(job);
    }

    /// Inserts a job at the *front* of the run queue (used for
    /// frequency-transition stalls, which preempt queued work).
    pub fn enqueue_front(&mut self, job: CoreJob) {
        self.queue.push_front(job);
    }

    /// Takes the next job if the core is idle, marking it busy.
    /// The caller computes the job's duration and must call
    /// [`Core::finish_job`] when it completes.
    pub fn try_dispatch(&mut self) -> Option<CoreJob> {
        if self.busy {
            return None;
        }
        let job = self.queue.pop_front()?;
        self.busy = true;
        Some(job)
    }

    /// Records completion of the in-flight job that ran over
    /// `[start, start + duration]`.
    ///
    /// # Panics
    ///
    /// Panics if the core was not busy.
    pub fn finish_job(&mut self, start: SimTime, duration: SimDuration) {
        assert!(self.busy, "finish_job on idle core {}", self.id);
        self.busy = false;
        self.util.record_busy(start, duration);
        self.jobs_done += 1;
    }

    /// True if a job is executing.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Queue length (not counting the executing job).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Empties the run queue (a server crash loses queued work),
    /// returning how many *request-carrying* jobs were discarded.
    /// The in-flight job, if any, is not touched — its completion
    /// event is already on the heap and is invalidated by the caller.
    pub fn clear_queue(&mut self) -> usize {
        let dropped = self
            .queue
            .iter()
            .filter(|job| matches!(job, CoreJob::Irq(_) | CoreJob::Work(_)))
            .count();
        self.queue.clear();
        dropped
    }

    /// Total jobs completed.
    pub fn jobs_done(&self) -> u64 {
        self.jobs_done
    }

    /// Number of frequency transitions performed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The queued jobs in run-queue order, for checkpointing.
    pub(crate) fn queued_jobs(&self) -> impl Iterator<Item = &CoreJob> {
        self.queue.iter()
    }

    /// Overwrites the core's runtime state from a checkpoint. Unlike
    /// [`Core::set_freq`], restoring the frequency does not count a
    /// transition — the transition was counted when it originally
    /// happened and is part of `transitions`.
    pub(crate) fn restore_runtime_state(
        &mut self,
        queue: VecDeque<CoreJob>,
        busy: bool,
        freq_ghz: f64,
        jobs_done: u64,
        transitions: u64,
    ) {
        self.queue = queue;
        self.busy = busy;
        self.freq_ghz = freq_ghz;
        self.jobs_done = jobs_done;
        self.transitions = transitions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use treadmill_workloads::{OpClass, RequestProfile};

    fn request() -> Request {
        Request::new(
            RequestId(1),
            0,
            0,
            RequestProfile {
                class: OpClass::Read,
                request_bytes: 64,
                response_bytes: 128,
                cpu_ns: 10_000.0,
                mem_ns: 3_000.0,
            },
            SimTime::ZERO,
        )
    }

    #[test]
    fn dispatch_cycle() {
        let mut core = Core::new(0, 0, 2.2);
        assert!(core.try_dispatch().is_none(), "idle core, empty queue");
        core.enqueue(CoreJob::Work(Box::new(request())));
        let job = core.try_dispatch().unwrap();
        assert!(matches!(job, CoreJob::Work(_)));
        assert!(core.is_busy());
        assert!(core.try_dispatch().is_none(), "busy core can't dispatch");
        core.finish_job(SimTime::ZERO, SimDuration::from_micros(10));
        assert!(!core.is_busy());
        assert_eq!(core.jobs_done(), 1);
        assert_eq!(core.util.busy_total(), SimDuration::from_micros(10));
    }

    #[test]
    fn stall_preempts_queue() {
        let mut core = Core::new(0, 0, 2.2);
        core.enqueue(CoreJob::Work(Box::new(request())));
        core.enqueue_front(CoreJob::Stall(SimDuration::from_micros(40)));
        assert!(matches!(core.try_dispatch().unwrap(), CoreJob::Stall(_)));
        assert_eq!(core.queue_len(), 1);
    }

    #[test]
    fn freq_changes_counted() {
        let mut core = Core::new(3, 0, 2.2);
        assert!(!core.set_freq(2.2), "same freq is not a transition");
        assert!(core.set_freq(1.2));
        assert!(core.set_freq(3.0));
        assert_eq!(core.transitions(), 2);
        assert_eq!(core.freq_ghz(), 3.0);
    }

    #[test]
    #[should_panic(expected = "idle core")]
    fn finish_on_idle_panics() {
        let mut core = Core::new(0, 0, 2.2);
        core.finish_job(SimTime::ZERO, SimDuration::from_micros(1));
    }
}
