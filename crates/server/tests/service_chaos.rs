//! Chaos tests against the real `treadmill-serve` binary: SIGKILL
//! mid-experiment and demand byte-identical artifacts after
//! `--resume`; SIGTERM and demand a clean drain; overload bursts and
//! demand shed-with-503 plus bounded memory.

#![allow(clippy::unwrap_used)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

use treadmill_server::client;

const TIMEOUT: Duration = Duration::from_secs(5);

fn serve_bin() -> &'static str {
    env!("CARGO_BIN_EXE_treadmill-serve")
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tml-serve-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns the server and waits until it rewrites `addr.txt` and
/// answers `/healthz`. The stale address file is removed first so a
/// restart cannot be confused with the previous incarnation.
#[allow(clippy::zombie_processes)] // every caller waits via wait_exit or kill+wait
fn spawn_server(state: &Path, resume: bool, extra: &[&str]) -> (Child, String) {
    let _ = fs::remove_file(state.join("addr.txt"));
    let mut cmd = Command::new(serve_bin());
    cmd.arg("--state-dir").arg(state);
    if resume {
        cmd.arg("--resume");
    }
    cmd.args(extra);
    // Detach stdio: a server leaked by a failing assertion must not
    // hold the test harness's output pipe open.
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    let child = cmd.spawn().expect("spawn treadmill-serve");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(addr) = fs::read_to_string(state.join("addr.txt")) {
            let addr = addr.trim().to_string();
            if !addr.is_empty()
                && client::request(&addr, "GET", "/healthz", &[], b"", TIMEOUT)
                    .map(|r| r.status == 200)
                    .unwrap_or(false)
            {
                return (child, addr);
            }
        }
        assert!(Instant::now() < deadline, "server never became healthy");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill -TERM failed");
}

fn wait_exit(child: &mut Child, timeout: Duration) -> ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("poll server") {
            return status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("server did not exit within {timeout:?}");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn chaos_spec() -> &'static str {
    r#"{"config":{"workload":{"workload":"memcached"},
        "target_rps":300000,"clients":2,"duration_ms":150,"warmup_ms":30,
        "seed":7},"runs":3,"ckpt_events":25000}"#
}

fn submit(addr: &str, spec: &str) -> client::HttpResponse {
    client::request(
        addr,
        "POST",
        "/experiments",
        &[("Content-Type", "application/json")],
        spec.as_bytes(),
        TIMEOUT,
    )
    .expect("POST /experiments")
}

/// Submits a spec and returns the accepted experiment id.
fn submit_id(addr: &str, spec: &str) -> String {
    let resp = submit(addr, spec);
    assert_eq!(resp.status, 201, "{}", resp.text());
    let body = resp.text();
    let marker = "\"id\":\"";
    let at = body.find(marker).unwrap() + marker.len();
    body[at..].split('"').next().unwrap().to_string()
}

fn status_of(addr: &str, id: &str) -> String {
    let resp = client::request(addr, "GET", &format!("/experiments/{id}"), &[], b"", TIMEOUT)
        .expect("GET status");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let body = resp.text();
    let marker = "\"status\":\"";
    let at = body.find(marker).unwrap() + marker.len();
    body[at..].split('"').next().unwrap().to_string()
}

fn wait_done(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match status_of(addr, id).as_str() {
            "done" => return,
            "failed" => panic!("experiment {id} failed"),
            status => {
                assert!(Instant::now() < deadline, "experiment stuck in {status}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

#[test]
fn sigkilled_server_resumes_to_byte_identical_artifacts() {
    let root = temp_root("resume");

    // Golden: the same spec through an uninterrupted in-process server.
    let golden_state = root.join("golden");
    let golden = {
        let opts = treadmill_server::ServeOptions::new(&golden_state);
        let handle = treadmill_server::start(opts).expect("start golden server");
        let addr = handle.addr().to_string();
        let id = submit_id(&addr, chaos_spec());
        wait_done(&addr, &id);
        let resp = client::request(
            &addr,
            "GET",
            &format!("/experiments/{id}/attribution"),
            &[],
            b"",
            TIMEOUT,
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        handle.drain();
        handle.join().expect("golden server threads panicked");
        resp.body
    };
    assert!(!golden.is_empty(), "golden attribution artifact is empty");

    // Chaos: SIGKILL the real binary mid-experiment, twice, with
    // seeded delays; every restart carries --resume.
    let chaos_state = root.join("chaos");
    let (mut child, addr) = spawn_server(&chaos_state, false, &[]);
    let id = submit_id(&addr, chaos_spec());

    let mut kills = 0;
    let mut addr = addr;
    for delay in [140u64, 260] {
        std::thread::sleep(Duration::from_millis(delay));
        if status_of(&addr, &id) == "done" {
            break; // too fast to kill mid-run; nothing left to interrupt
        }
        child.kill().expect("SIGKILL server");
        let _ = child.wait();
        let (next, next_addr) = spawn_server(&chaos_state, true, &[]);
        child = next;
        addr = next_addr;
        kills += 1;
    }

    // Let the final incarnation finish the job and serve the artifact.
    wait_done(&addr, &id);
    let resp = client::request(
        &addr,
        "GET",
        &format!("/experiments/{id}/attribution"),
        &[],
        b"",
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(
        resp.body, golden,
        "attribution artifact differs between uninterrupted and SIGKILL'd-then-resumed servers"
    );

    // And what the API serves is exactly what the sweep journaled.
    let on_disk =
        fs::read(chaos_state.join("jobs").join(&id).join("attribution.tsv")).unwrap();
    assert_eq!(resp.body, on_disk);

    // The audit log survived every incarnation: submission, at least
    // one recovery, and the final completion.
    let audit = fs::read_to_string(chaos_state.join("audit.jsonl")).unwrap();
    assert!(audit.contains("\"event\":\"submitted\""), "{audit}");
    assert!(audit.contains("\"event\":\"run-done\""), "{audit}");
    if kills > 0 {
        assert!(audit.contains("\"event\":\"recovered\""), "{audit}");
    }

    sigterm(&child);
    let status = wait_exit(&mut child, Duration::from_secs(30));
    assert!(status.success(), "drained server exited {status}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn sigterm_drains_cleanly() {
    let root = temp_root("drain");
    let (mut child, addr) = spawn_server(&root.join("state"), false, &["--mem-store"]);
    assert_eq!(
        client::request(&addr, "GET", "/readyz", &[], b"", TIMEOUT).unwrap().status,
        200
    );
    sigterm(&child);
    let status = wait_exit(&mut child, Duration::from_secs(30));
    assert!(status.success(), "SIGTERM'd idle server exited {status}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn sigterm_mid_experiment_seals_checkpoint_for_resume() {
    // Drain, not crash: SIGTERM while a job runs must exit 0, leave
    // the job journaled as pending, and a --resume restart must finish
    // it to the same bytes as the golden run above would.
    let root = temp_root("drain-mid");
    let state = root.join("state");
    let (mut child, addr) = spawn_server(&state, false, &[]);
    let id = submit_id(&addr, chaos_spec());
    std::thread::sleep(Duration::from_millis(120));

    sigterm(&child);
    let status = wait_exit(&mut child, Duration::from_secs(60));
    assert!(status.success(), "mid-experiment drain exited {status}");

    let (mut child, addr) = spawn_server(&state, true, &[]);
    wait_done(&addr, &id);
    let resp = client::request(
        &addr,
        "GET",
        &format!("/experiments/{id}/attribution"),
        &[],
        b"",
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    sigterm(&child);
    let status = wait_exit(&mut child, Duration::from_secs(30));
    assert!(status.success());
    let _ = fs::remove_dir_all(&root);
}

/// VmRSS of a live process, in kilobytes (Linux only).
fn rss_kb(pid: u32) -> Option<u64> {
    let status = fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[test]
fn overload_burst_sheds_and_memory_stays_bounded() {
    let root = temp_root("overload");
    let state = root.join("state");
    let (mut child, addr) = spawn_server(&state, false, &["--queue-cap", "1"]);

    // Occupy the executor with a long job, then burst 10× the cap.
    let long_spec = r#"{"config":{"workload":{"workload":"memcached"},
        "target_rps":300000,"clients":2,"duration_ms":200,"warmup_ms":40,
        "seed":11},"runs":8,"ckpt_events":25000}"#;
    let resp = submit(&addr, long_spec);
    assert_eq!(resp.status, 201, "{}", resp.text());

    let mut shed = 0;
    for seed in 0..10u64 {
        let spec = chaos_spec().replace("\"seed\":7", &format!("\"seed\":{}", 100 + seed));
        let resp = submit(&addr, &spec);
        match resp.status {
            201 => {}
            503 => {
                assert!(
                    resp.header("retry-after").is_some(),
                    "503 without Retry-After: {}",
                    resp.text()
                );
                shed += 1;
            }
            other => panic!("unexpected status {other}: {}", resp.text()),
        }
    }
    assert!(shed >= 1, "burst of 10 over queue cap 1 shed nothing");

    // Still healthy, and memory is bounded: queued work is ids, not
    // buffered request bodies.
    assert_eq!(
        client::request(&addr, "GET", "/healthz", &[], b"", TIMEOUT).unwrap().status,
        200
    );
    if let Some(kb) = rss_kb(child.id()) {
        assert!(kb < 512 * 1024, "server RSS {kb} kB under a 10x burst");
    }

    sigterm(&child);
    let status = wait_exit(&mut child, Duration::from_secs(60));
    assert!(status.success(), "overloaded server failed to drain: {status}");
    let _ = fs::remove_dir_all(&root);
}
