//! Property tests for the service's untrusted-input surfaces.
//!
//! Two attack surfaces, two invariants:
//!
//! * the file `JobStore`'s journal can be torn mid-write, bit-flipped
//!   by the storage layer, or hold duplicate lines from a replayed
//!   crash — `FileStore::open` must replay *any* such journal without
//!   panicking, and a store recovered from corruption must still
//!   accept and persist new work;
//! * the `POST /experiments` body is arbitrary bytes — every spec is
//!   either rejected with a typed [`SpecError`] or safe to hand to
//!   the engine. No HTTP-reachable configuration may panic it.

#![allow(clippy::unwrap_used)]

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use treadmill_server::store::{FileStore, JobStore};
use treadmill_server::{ExperimentSpec, JobStatus};

fn temp_state(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tml-fuzz-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a realistic journal by driving a real store, then returns
/// its raw text for mutation.
fn seed_journal(dir: &Path, jobs: usize) -> String {
    let (store, _) = FileStore::open(dir).unwrap();
    for i in 0..jobs {
        let key = format!("key-{i}");
        let spec = format!("{{\"seed\":{i}}}");
        let job = match store.submit(Some(&key), &spec).unwrap() {
            treadmill_server::SubmitOutcome::Created(job)
            | treadmill_server::SubmitOutcome::Deduplicated(job) => job,
        };
        store.set_status(&job.id, JobStatus::Running, None).unwrap();
        if i % 2 == 0 {
            store.set_status(&job.id, JobStatus::Done, None).unwrap();
        }
    }
    fs::read_to_string(dir.join("jobs.jsonl")).unwrap()
}

/// Reopens a state dir whose journal holds `text`, asserting the
/// replay path neither panics nor errors, and that the recovered
/// store still functions (accepts a submission that survives another
/// reopen).
fn assert_recovers(tag: &str, text: &[u8]) {
    let dir = temp_state(tag);
    fs::write(dir.join("jobs.jsonl"), text).unwrap();
    let (store, report) = FileStore::open(&dir).unwrap();

    // A recovered store is a working store.
    let outcome = store.submit(Some("post-recovery"), "{}").unwrap();
    let id = match outcome {
        treadmill_server::SubmitOutcome::Created(job)
        | treadmill_server::SubmitOutcome::Deduplicated(job) => job.id,
    };
    drop(store);
    let (store, reread) = FileStore::open(&dir).unwrap();
    let job = store.get(&id).expect("post-recovery submission persisted");
    assert_eq!(job.status, JobStatus::Queued);
    assert!(
        reread.jobs >= report.jobs,
        "reopen lost jobs: {} -> {}",
        report.jobs,
        reread.jobs
    );
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Torn write: the journal ends mid-line at an arbitrary byte.
    #[test]
    fn truncated_journal_replays(jobs in 1usize..6, cut in 0usize..4096) {
        let dir = temp_state("trunc-seed");
        let text = seed_journal(&dir, jobs);
        let _ = fs::remove_dir_all(&dir);
        let cut = cut.min(text.len());
        if text.is_char_boundary(cut) {
            assert_recovers("trunc", &text.as_bytes()[..cut]);
        }
    }

    /// Storage-layer corruption: one byte anywhere is replaced with
    /// another printable byte (the journal stays UTF-8 readable; raw
    /// binary corruption is the arbitrary-bytes case below).
    #[test]
    fn byte_flipped_journal_replays(
        jobs in 1usize..6,
        at in 0usize..4096,
        replacement in 0x20u8..0x7f,
    ) {
        let dir = temp_state("flip-seed");
        let mut bytes = seed_journal(&dir, jobs).into_bytes();
        let _ = fs::remove_dir_all(&dir);
        if !bytes.is_empty() {
            let at = at % bytes.len();
            bytes[at] = replacement;
        }
        assert_recovers("flip", &bytes);
    }

    /// Crash-replay artifacts: a random line duplicated, plus a line of
    /// garbage spliced in.
    #[test]
    fn duplicated_and_garbage_lines_replay(
        jobs in 1usize..6,
        pick in 0usize..64,
        garbage_bytes in proptest::collection::vec(0x20u8..0x7f, 0..80),
    ) {
        let dir = temp_state("dup-seed");
        let text = seed_journal(&dir, jobs);
        let _ = fs::remove_dir_all(&dir);
        let garbage = String::from_utf8(garbage_bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let dup = lines[pick % lines.len()];
        let mut mutated = String::new();
        for (i, line) in lines.iter().enumerate() {
            mutated.push_str(line);
            mutated.push('\n');
            if i == pick % lines.len() {
                mutated.push_str(dup);
                mutated.push('\n');
                mutated.push_str(&garbage);
                mutated.push('\n');
            }
        }
        assert_recovers("dup", mutated.as_bytes());
    }

    /// Arbitrary bytes as a journal — worst case, everything is torn.
    #[test]
    fn arbitrary_journal_bytes_replay(
        bytes in proptest::collection::vec(0u8..=255, 0..2048),
    ) {
        // Interior garbage is fine; only require valid UTF-8 on the
        // path fs::read_to_string demands.
        if String::from_utf8(bytes.clone()).is_ok() {
            assert_recovers("arb", &bytes);
        }
    }

    /// Arbitrary text as a `POST /experiments` body never panics —
    /// it parses into a validated spec or a typed error.
    #[test]
    fn arbitrary_spec_body_is_typed(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let body = String::from_utf8_lossy(&bytes);
        match ExperimentSpec::from_json(&body) {
            Ok(spec) => prop_assert!(spec.validate().is_ok()),
            Err(e) => {
                // The typed surface holds: a kind, maybe a field, and
                // a rendered message.
                prop_assert!(!e.kind().is_empty());
                let _ = e.field();
                let _ = e.to_string();
            }
        }
    }

    /// No HTTP-reachable configuration panics the engine: any spec the
    /// validator accepts from this hostile generator (which straddles
    /// every validation boundary) must build and run to completion.
    /// Ranges are chosen so accepted worlds stay small enough to
    /// execute for real rather than merely type-check.
    #[test]
    fn accepted_specs_run_without_panicking(
        rps_case in 0usize..8,
        rps in 1.0..300_000.0f64,
        clients in 0usize..5,
        connections in 0u32..7,
        duration_ms in 0u64..80,
        warmup_ms in 0u64..100,
        servers in 0u32..4,
        threads in 0u32..3,
        remote_every in 0u32..6,
        seed in 0u64..=u64::MAX,
        runs in 0u64..4,
        ckpt_case in 0usize..4,
        ckpt_events in 0u64..10,
    ) {
        // Poor man's prop_oneof: a selector steers some draws onto the
        // hostile special cases the validator must reject.
        let target_rps = match rps_case {
            0 => "null".to_string(), // deserializes to NaN or errors
            1 => "1e999".to_string(), // overflows to infinity
            2 => "-1".to_string(),
            3 => "0".to_string(),
            _ => format!("{rps}"),
        };
        let ckpt_events = match ckpt_case {
            0 => ckpt_events,
            1 => 1_000,
            _ => 25_000,
        };
        let body = format!(
            r#"{{"config":{{"workload":{{"workload":"memcached"}},
                "target_rps":{target_rps},"clients":{clients},
                "connections_per_client":{connections},
                "duration_ms":{duration_ms},"warmup_ms":{warmup_ms},
                "seed":{seed},"servers":{servers},"threads":{threads},
                "remote_every":{remote_every}}},
                "runs":{runs},"ckpt_events":{ckpt_events}}}"#
        );
        if let Ok(spec) = ExperimentSpec::from_json(&body) {
            // Accepted ⇒ must execute cleanly. The harness turns any
            // panic below into a counterexample.
            let test = spec.config.build().expect("validated spec must build");
            let report = test.run(0);
            prop_assert!(report.aggregated.p99.is_finite() || report.aggregated.p99.is_nan());
        }
    }
}
