//! In-process integration tests for the `treadmill-serve` HTTP API:
//! a real listener on port 0, real sockets through the minimal
//! client, and the full submit → events → artifact lifecycle.

#![allow(clippy::unwrap_used)]

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use treadmill_server::client;
use treadmill_server::service::{start, ServeOptions, ServerHandle, StoreKind};

const TIMEOUT: Duration = Duration::from_secs(5);

fn temp_state(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tml-api-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn mem_server(tag: &str) -> (ServerHandle, String, PathBuf) {
    let state = temp_state(tag);
    let mut opts = ServeOptions::new(&state);
    opts.store = StoreKind::Memory;
    let handle = start(opts).expect("start service");
    let addr = handle.addr().to_string();
    (handle, addr, state)
}

/// A small, fast spec: 2 cells of 2k requests each.
fn small_spec(seed: u64) -> String {
    format!(
        r#"{{"config":{{"workload":{{"workload":"memcached"}},
            "target_rps":50000,"clients":2,"connections_per_client":4,
            "duration_ms":40,"warmup_ms":10,"seed":{seed}}},
            "runs":2,"ckpt_events":25000}}"#
    )
}

fn get(addr: &str, path: &str) -> client::HttpResponse {
    client::request(addr, "GET", path, &[], b"", TIMEOUT).expect("GET")
}

fn post_spec(addr: &str, spec: &str, key: Option<&str>) -> client::HttpResponse {
    let mut headers = vec![("Content-Type", "application/json")];
    if let Some(key) = key {
        headers.push(("Idempotency-Key", key));
    }
    client::request(addr, "POST", "/experiments", &headers, spec.as_bytes(), TIMEOUT)
        .expect("POST /experiments")
}

/// Pulls `"name":"value"` out of a flat JSON body without leaning on
/// the vendored parser's accessor surface.
fn field_str(body: &str, name: &str) -> Option<String> {
    let marker = format!("\"{name}\":\"");
    let at = body.find(&marker)? + marker.len();
    let rest = &body[at..];
    Some(rest[..rest.find('"')?].to_string())
}

fn wait_done(addr: &str, id: &str) -> client::HttpResponse {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = get(addr, &format!("/experiments/{id}"));
        assert_eq!(resp.status, 200, "status poll failed: {}", resp.text());
        let status = field_str(&resp.text(), "status").unwrap();
        match status.as_str() {
            "done" => return resp,
            "failed" => panic!("experiment failed: {}", resp.text()),
            _ if Instant::now() > deadline => {
                panic!("experiment stuck in {status}: {}", resp.text())
            }
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn shutdown(handle: ServerHandle, state: &PathBuf) {
    handle.drain();
    handle.join().expect("service threads panicked");
    let _ = fs::remove_dir_all(state);
}

#[test]
fn health_endpoints_respond() {
    let (handle, addr, state) = mem_server("health");
    let resp = get(&addr, "/healthz");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.text(), "ok\n");

    let resp = get(&addr, "/readyz");
    assert_eq!(resp.status, 200);
    let body = resp.text();
    assert!(body.contains("\"status\":\"ready\""), "{body}");
    assert!(body.contains("\"queue_cap\""), "{body}");
    shutdown(handle, &state);
}

#[test]
fn invalid_specs_get_typed_400s() {
    let (handle, addr, state) = mem_server("badspec");

    // Malformed JSON.
    let resp = post_spec(&addr, "{not json", None);
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("\"kind\":\"json\""), "{}", resp.text());

    // Engine-level validation failure names the field.
    let bad = small_spec(1).replace("\"target_rps\":50000", "\"target_rps\":-5");
    let resp = post_spec(&addr, &bad, None);
    assert_eq!(resp.status, 400);
    let body = resp.text();
    assert!(body.contains("\"kind\":\"invalid\""), "{body}");
    assert!(body.contains("\"field\":\"target_rps\""), "{body}");

    // Service-level caps too.
    let bad = small_spec(1).replace("\"runs\":2", "\"runs\":1000");
    let resp = post_spec(&addr, &bad, None);
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("\"field\":\"runs\""), "{}", resp.text());

    // Non-UTF-8 body.
    let resp = client::request(
        &addr,
        "POST",
        "/experiments",
        &[],
        &[0xff, 0xfe, 0x80],
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    shutdown(handle, &state);
}

#[test]
fn unknown_routes_and_methods_are_typed() {
    let (handle, addr, state) = mem_server("routes");
    assert_eq!(get(&addr, "/experiments/exp-999999").status, 404);
    assert_eq!(get(&addr, "/nope").status, 404);
    let resp = client::request(&addr, "DELETE", "/healthz", &[], b"", TIMEOUT).unwrap();
    assert_eq!(resp.status, 405);
    shutdown(handle, &state);
}

#[test]
fn submit_runs_to_done_and_serves_artifacts() {
    let (handle, addr, state) = mem_server("lifecycle");

    // Big enough (3 cells × ~45k requests) that the job is still in
    // flight when the not-ready probe below lands.
    let spec = r#"{"config":{"workload":{"workload":"memcached"},
        "target_rps":300000,"clients":2,"duration_ms":150,"warmup_ms":30,
        "seed":7},"runs":3,"ckpt_events":25000}"#;
    let resp = post_spec(&addr, spec, None);
    assert_eq!(resp.status, 201, "{}", resp.text());
    let id = field_str(&resp.text(), "id").expect("submit body has id");

    // Artifact before completion: typed 409, not a hang or a panic.
    let resp = get(&addr, &format!("/experiments/{id}/attribution"));
    assert_eq!(resp.status, 409);
    assert!(resp.text().contains("not-ready"), "{}", resp.text());

    wait_done(&addr, &id);

    // Artifacts come back byte-identical to what the sweep wrote.
    for (route, file) in [("attribution", "attribution.tsv"), ("summary", "summary.tsv")] {
        let resp = get(&addr, &format!("/experiments/{id}/{route}"));
        assert_eq!(resp.status, 200, "{route}: {}", resp.text());
        assert_eq!(resp.header("content-type"), Some("text/tab-separated-values"));
        let on_disk = fs::read(state.join("jobs").join(&id).join(file)).unwrap();
        assert_eq!(resp.body, on_disk, "{route} differs from {file} on disk");
    }

    // The events stream is chunked and terminates with the sentinel.
    let resp = get(&addr, &format!("/experiments/{id}/events"));
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("transfer-encoding").map(str::to_ascii_lowercase),
        Some("chunked".to_string())
    );
    let events = resp.text();
    assert!(events.contains("cell 0:"), "{events}");
    assert!(events.ends_with("end\n"), "{events}");

    shutdown(handle, &state);
}

#[test]
fn screened_spec_runs_two_stage_sweep_and_serves_screen_artifacts() {
    let (handle, addr, state) = mem_server("screened");

    // High threshold: the analytic screen keeps only the worst cells,
    // so the DES stage runs far fewer than 16 sweeps.
    let spec = r#"{"config":{"workload":{"workload":"memcached"},
        "target_rps":150000,"clients":2,"connections_per_client":4,
        "duration_ms":40,"warmup_ms":10,"seed":11,
        "screen":{"threshold":0.2}},"runs":1,"ckpt_events":25000}"#;
    let resp = post_spec(&addr, spec, None);
    assert_eq!(resp.status, 201, "{}", resp.text());
    let id = field_str(&resp.text(), "id").expect("submit body has id");
    wait_done(&addr, &id);

    for (route, file) in [("screen", "screen.tsv"), ("factorial", "factorial.tsv")] {
        let resp = get(&addr, &format!("/experiments/{id}/{route}"));
        assert_eq!(resp.status, 200, "{route}: {}", resp.text());
        let on_disk = fs::read(state.join("jobs").join(&id).join(file)).unwrap();
        assert_eq!(resp.body, on_disk, "{route} differs from {file} on disk");
    }
    let screen = get(&addr, &format!("/experiments/{id}/screen")).text();
    assert!(screen.contains("# threshold=0.200000"), "{screen}");
    assert!(screen.contains("flagged"), "{screen}");
    let factorial = get(&addr, &format!("/experiments/{id}/factorial")).text();
    let simulated = factorial
        .lines()
        .filter(|l| !l.starts_with('#') && !l.starts_with("cell\t") && !l.is_empty())
        .count();
    let flagged = screen
        .lines()
        .filter(|l| l.ends_with("\t1"))
        .count();
    assert_eq!(simulated, flagged, "{factorial}\n{screen}");
    assert!((1..16).contains(&simulated), "screen must drop some cells: {screen}");

    // The progress stream narrates the two stages.
    let events = get(&addr, &format!("/experiments/{id}/events")).text();
    assert!(events.contains("analytic screen"), "{events}");
    assert!(events.contains("flagged"), "{events}");

    shutdown(handle, &state);
}

#[test]
fn idempotency_key_deduplicates() {
    let (handle, addr, state) = mem_server("dedup");

    let first = post_spec(&addr, &small_spec(3), Some("k-123"));
    assert_eq!(first.status, 201, "{}", first.text());
    let id = field_str(&first.text(), "id").unwrap();

    let second = post_spec(&addr, &small_spec(3), Some("k-123"));
    assert_eq!(second.status, 200, "{}", second.text());
    let body = second.text();
    assert!(body.contains("\"deduplicated\":true"), "{body}");
    assert_eq!(field_str(&body, "id").unwrap(), id, "dedup returned a new id");

    // A different key is a different experiment.
    let third = post_spec(&addr, &small_spec(3), Some("k-456"));
    assert_eq!(third.status, 201, "{}", third.text());
    assert_ne!(field_str(&third.text(), "id").unwrap(), id);

    wait_done(&addr, &id);
    shutdown(handle, &state);
}

#[test]
fn admission_queue_sheds_with_503_and_retry_after() {
    let state = temp_state("overload");
    let mut opts = ServeOptions::new(&state);
    opts.store = StoreKind::Memory;
    opts.queue_cap = 1;
    let handle = start(opts).expect("start service");
    let addr = handle.addr().to_string();

    // One deliberately long job occupies the executor; ckpt_events is
    // small so the drain below interrupts it promptly.
    let long_spec = r#"{"config":{"workload":{"workload":"memcached"},
        "target_rps":300000,"clients":2,"connections_per_client":4,
        "duration_ms":200,"warmup_ms":40,"seed":11},
        "runs":8,"ckpt_events":25000}"#;
    let resp = post_spec(&addr, long_spec, None);
    assert_eq!(resp.status, 201, "{}", resp.text());

    // Burst past the queue: with the executor busy and cap 1, most of
    // these must shed with 503 + Retry-After rather than queue.
    let mut accepted = 0;
    let mut shed = 0;
    for seed in 100..112u64 {
        let resp = post_spec(&addr, &small_spec(seed), None);
        match resp.status {
            201 => accepted += 1,
            503 => {
                assert!(
                    resp.header("retry-after").is_some(),
                    "503 without Retry-After: {}",
                    resp.text()
                );
                assert!(resp.text().contains("overloaded"), "{}", resp.text());
                shed += 1;
            }
            other => panic!("unexpected status {other}: {}", resp.text()),
        }
    }
    assert!(shed >= 1, "burst of 12 over cap 1 shed nothing ({accepted} accepted)");

    // The server is still healthy mid-overload.
    assert_eq!(get(&addr, "/healthz").status, 200);

    handle.drain();
    handle.join().expect("service threads panicked");
    let _ = fs::remove_dir_all(&state);
}
