//! Minimal HTTP/1.1 client for the CLI's `submit` / `status` /
//! `fetch` subcommands and the test suites. One request per
//! connection, `Connection: close`, timeouts on every socket
//! operation, chunked responses decoded transparently.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body, de-chunked when the server streamed it.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as (lossy) text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad_data(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Issues one request and reads the full response.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let addr: SocketAddr = addr
        .parse()
        .map_err(|_| bad_data("address must be host:port"))?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;

    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad_data("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| bad_data("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad_data("empty response"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| bad_data("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((
                name.trim().to_ascii_lowercase(),
                value.trim().to_string(),
            ));
        }
    }
    let raw_body = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        dechunk(raw_body)?
    } else {
        raw_body.to_vec()
    };
    Ok(HttpResponse { status, headers, body })
}

fn dechunk(mut raw: &[u8]) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let line_end = raw
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| bad_data("chunk size line missing"))?;
        let size_text = std::str::from_utf8(&raw[..line_end])
            .map_err(|_| bad_data("non-UTF-8 chunk size"))?;
        let size = usize::from_str_radix(size_text.trim(), 16)
            .map_err(|_| bad_data("bad chunk size"))?;
        raw = &raw[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if raw.len() < size + 2 {
            return Err(bad_data("truncated chunk"));
        }
        out.extend_from_slice(&raw[..size]);
        raw = &raw[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_response() {
        let resp = parse_response(
            b"HTTP/1.1 201 Created\r\nContent-Type: application/json\r\n\
              Content-Length: 2\r\n\r\n{}",
        )
        .unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body, b"{}");
    }

    #[test]
    fn dechunks_streamed_response() {
        let resp = parse_response(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
              5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(resp.text(), "hello world");
    }

    #[test]
    fn truncated_chunk_is_typed_error() {
        let err = parse_response(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nff\r\nshort",
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
