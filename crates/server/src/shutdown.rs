//! SIGTERM / SIGINT plumbing shared by `treadmill-serve` (graceful
//! drain) and `treadmill-cli sweep` (seal the checkpoint, flush the
//! journal, exit).
//!
//! The handler does the only async-signal-safe thing possible: it
//! flips a process-wide [`AtomicBool`]. Everything else — closing
//! queues, cancelling sweeps at checkpoint boundaries — happens on
//! ordinary threads that poll [`requested`] or share [`flag`] as a
//! [`treadmill_core::SweepControl::cancel`] hook.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// Installs SIGINT + SIGTERM handlers that set the shutdown flag.
/// Idempotent; call once near the top of `main`.
pub fn install() {
    sys::install();
}

/// True once a shutdown signal has been observed.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// The raw flag, for wiring into `SweepControl { cancel, .. }`.
pub fn flag() -> &'static AtomicBool {
    &REQUESTED
}

/// Requests shutdown programmatically — the same path a signal takes,
/// used by tests and by in-process drains.
pub fn request() {
    REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // std already links libc on unix; declaring signal(2) directly
    // keeps the crate dependency-free. The previous-handler return
    // value is pointer-sized and ignored.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // The only async-signal-safe action: an atomic store.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        // SAFETY: signal(2) with a handler that performs a single
        // lock-free atomic store is async-signal-safe; registration
        // happens before worker threads spawn.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub(super) fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_flag_and_handlers_install() {
        install();
        assert!(!requested() || flag().load(Ordering::SeqCst));
        request();
        assert!(requested());
        flag().store(false, Ordering::SeqCst);
    }
}
