//! Dependency-free HTTP/1.1 parsing and response writing.
//!
//! Deliberately minimal: one request per connection
//! (`Connection: close`), hard caps on head and body size, and typed
//! errors so the worker can map malformed input to `4xx` instead of
//! panicking. Both sides of the socket run under read/write timeouts
//! set by the acceptor, so no request can block a worker past its
//! budget.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body (experiment specs are small JSON).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercase as received.
    pub method: String,
    /// Request path with any `?query` suffix stripped.
    pub path: String,
    /// Header name/value pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The socket timed out mid-read (maps to `408`).
    Timeout,
    /// The peer closed before sending anything.
    Closed,
    /// A size cap was exceeded (maps to `413`).
    TooLarge(&'static str),
    /// The bytes did not parse as HTTP/1.1 (maps to `400`).
    Malformed(&'static str),
    /// Some other socket error.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Timeout => write!(f, "socket timeout"),
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::TooLarge(what) => write!(f, "{what} exceeds cap"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

fn map_io(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads and parses one request from `stream`. Relies on the socket's
/// read timeout to bound the wait; a slow-loris peer gets
/// [`HttpError::Timeout`], an oversized one [`HttpError::TooLarge`].
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("request head"));
        }
        let n = stream.read(&mut chunk).map_err(map_io)?;
        if n == 0 {
            return Err(if buf.is_empty() {
                HttpError::Closed
            } else {
                HttpError::Malformed("truncated head")
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let raw_path = parts.next().ok_or(HttpError::Malformed("missing path"))?;
    let version = parts.next().ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let path = raw_path
        .split('?')
        .next()
        .unwrap_or(raw_path)
        .to_string();

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > 64 {
            return Err(HttpError::TooLarge("header count"));
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("request body"));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(map_io)?;
        if n == 0 {
            return Err(HttpError::Malformed("truncated body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request { method, path, headers, body })
}

/// Reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response with `Content-Length` and
/// `Connection: close`. `extra` headers are appended verbatim.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra: &[(&str, &str)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Starts a chunked (`Transfer-Encoding: chunked`) response; follow
/// with [`write_chunk`] calls and a final [`end_chunked`].
pub fn start_chunked(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason(status)
    );
    stream.write_all(head.as_bytes())
}

/// Writes one chunk. Empty input is skipped (a zero-length chunk would
/// terminate the stream).
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response.
pub fn end_chunked(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn roundtrip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(
            b"POST /experiments?x=1 HTTP/1.1\r\nHost: h\r\n\
              Idempotency-Key: k1\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/experiments");
        assert_eq!(req.header("idempotency-key"), Some("k1"));
        assert_eq!(req.header("IDEMPOTENCY-KEY"), Some("k1"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_gibberish_with_typed_error() {
        let err = roundtrip(b"this is not http\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = roundtrip(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge("request body")), "{err:?}");
    }
}
