//! Load testing as a service: `treadmill-serve`.
//!
//! The paper's Treadmill is meant to run *continuously* against
//! production systems; this crate wraps the crash-tolerant sweep
//! orchestration of [`treadmill_core::sweep`] in a long-running HTTP
//! service with submit / monitor / fetch semantics. Robustness is the
//! design driver — a tail-latency tool that adds its own tail (or
//! loses work to a crash) is self-defeating — so every layer degrades
//! gracefully:
//!
//! * **Journaled jobs** ([`store`]): the file-backed [`store::JobStore`]
//!   appends every job state transition to an fsynced `jobs.jsonl`
//!   journal (same torn-line-tolerant pattern as the sweep manifest).
//!   A SIGKILL'd server restarted with `--resume` replays the journal
//!   and continues in-flight experiments from their checkpoints,
//!   producing byte-identical artifacts.
//! * **Admission control** ([`queue`]): a bounded job queue sheds
//!   excess submissions with `503` + `Retry-After` instead of growing
//!   without bound; a connection cap and per-request socket timeouts
//!   bound HTTP-side memory and latency.
//! * **Graceful drain** ([`shutdown`], [`service`]): SIGTERM stops the
//!   acceptor, cancels the in-flight sweep at the next checkpoint
//!   boundary (sealing it to disk), and flushes the journal before
//!   exit — indistinguishable on disk from a SIGKILL, minus the lost
//!   batch.
//! * **Audit trail** ([`audit`]): an append-only `audit.jsonl` records
//!   seed, config hash, and snapshot version for every run.
//!
//! The HTTP layer ([`http`]) is dependency-free: a hand-rolled
//! HTTP/1.1 parser over `std::net::TcpListener` with a fixed
//! worker-thread pool. [`client`] is the matching minimal client used
//! by the `treadmill-cli` `submit` / `status` / `fetch` subcommands.

// Unlike the simulation crates this one is allowed to read wall
// clocks (it serves real sockets); tml-lint carries the matching
// allowlist entry. Panic budget is zero: handlers must degrade, not
// abort.
#![warn(missing_docs)]
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)
)]

pub mod audit;
pub mod client;
pub mod http;
pub mod job;
pub mod jsonx;
pub mod queue;
pub mod service;
pub mod shutdown;
pub mod store;

pub use audit::{AuditEntry, AuditLog};
pub use job::{ExperimentSpec, JobStatus, SpecError};
pub use queue::{BoundedQueue, Pop, Push};
pub use service::{start, ServeOptions, ServerHandle, StartError, StoreKind};
pub use store::{FileStore, JobStore, MemStore, ReplayReport, StoredJob, SubmitOutcome};
