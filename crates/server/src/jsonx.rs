//! Tiny JSON object writer.
//!
//! The vendored `serde_json` shim deliberately exposes only
//! derive-driven (de)serialisation — no `json!` macro and no value
//! builder — so the handful of ad-hoc response/audit bodies this
//! service emits are assembled with this escaping string builder
//! instead. Output is always a single-line JSON object.

use std::fmt::Write as _;

/// Escapes `s` into `out` per RFC 8259 (quotes, backslash, control
/// characters).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Incremental `{...}` writer; fields appear in insertion order.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj { buf: String::from("{") }
    }

    fn sep(&mut self) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
    }

    fn key(&mut self, name: &str) {
        self.sep();
        self.buf.push('"');
        escape_into(&mut self.buf, name);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, name: &str, value: &str) -> Self {
        self.key(name);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds a string-or-null field.
    #[must_use]
    pub fn opt_str(mut self, name: &str, value: Option<&str>) -> Self {
        match value {
            Some(value) => self.str(name, value),
            None => {
                self.key(name);
                self.buf.push_str("null");
                self
            }
        }
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, name: &str, value: u64) -> Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, name: &str, value: bool) -> Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a nested pre-rendered JSON value verbatim.
    #[must_use]
    pub fn raw(mut self, name: &str, rendered: &str) -> Self {
        self.key(name);
        self.buf.push_str(rendered);
        self
    }

    /// Closes and returns the object text.
    #[must_use]
    pub fn build(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_escapes() {
        let text = Obj::new()
            .str("a", "x\"y\\z\n")
            .u64("n", 7)
            .bool("b", true)
            .opt_str("missing", None)
            .raw("nested", &Obj::new().str("k", "v").build())
            .build();
        assert_eq!(
            text,
            r#"{"a":"x\"y\\z\n","n":7,"b":true,"missing":null,"nested":{"k":"v"}}"#
        );
        // The shim parser accepts what we emit.
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(value["nested"]["k"].as_str(), Some("v"));
    }
}
