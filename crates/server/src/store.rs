//! Job persistence: the [`JobStore`] trait with an in-memory backend
//! for tests and a file-backed backend whose `jobs.jsonl` journal
//! reuses the crash-safety recipe of the sweep manifest
//! (`core/src/sweep.rs`): append-only JSON lines, fsynced per append,
//! torn trailing lines tolerated and ignored on replay, duplicate
//! lines idempotent.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use serde::{Deserialize, Serialize};

use crate::job::JobStatus;

/// Recovers a poisoned mutex: the protected state is a plain map with
/// no invariants that a panicking writer could half-apply, so the
/// service degrades gracefully instead of cascading the panic.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One stored job.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredJob {
    /// Stable identifier (`exp-NNNNNN`).
    pub id: String,
    /// The idempotency key it was submitted under, if any.
    pub key: Option<String>,
    /// The validated spec, as canonical JSON.
    pub spec_json: String,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Failure detail, for `failed` jobs.
    pub detail: Option<String>,
}

/// What a submission did.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// A new job was created.
    Created(StoredJob),
    /// The idempotency key matched an existing job; nothing was
    /// created and the original is returned.
    Deduplicated(StoredJob),
}

/// Pluggable job persistence.
pub trait JobStore: Send + Sync {
    /// Admits a job (or dedups it by idempotency `key`).
    fn submit(&self, key: Option<&str>, spec_json: &str) -> io::Result<SubmitOutcome>;
    /// Records a lifecycle transition.
    fn set_status(
        &self,
        id: &str,
        status: JobStatus,
        detail: Option<&str>,
    ) -> io::Result<()>;
    /// Fetches one job.
    fn get(&self, id: &str) -> Option<StoredJob>;
    /// All jobs in id order.
    fn jobs(&self) -> Vec<StoredJob>;
}

/// Shared bookkeeping for both backends.
#[derive(Default)]
struct Inner {
    next_job: u64,
    jobs: BTreeMap<String, StoredJob>,
    by_key: BTreeMap<String, String>,
}

impl Inner {
    fn submit(&mut self, key: Option<&str>, spec_json: &str) -> SubmitOutcome {
        if let Some(key) = key {
            if let Some(id) = self.by_key.get(key) {
                if let Some(job) = self.jobs.get(id) {
                    return SubmitOutcome::Deduplicated(job.clone());
                }
            }
        }
        let id = format!("exp-{:06}", self.next_job);
        self.next_job += 1;
        let job = StoredJob {
            id: id.clone(),
            key: key.map(str::to_string),
            spec_json: spec_json.to_string(),
            status: JobStatus::Queued,
            detail: None,
        };
        if let Some(key) = key {
            self.by_key.insert(key.to_string(), id.clone());
        }
        self.jobs.insert(id, job.clone());
        SubmitOutcome::Created(job)
    }

    fn set_status(&mut self, id: &str, status: JobStatus, detail: Option<&str>) -> bool {
        match self.jobs.get_mut(id) {
            Some(job) => {
                job.status = status;
                job.detail = detail.map(str::to_string);
                true
            }
            None => false,
        }
    }
}

/// Volatile store for tests and `--mem-store` runs; journal-free, so
/// a crash forgets everything (by design).
#[derive(Default)]
pub struct MemStore {
    inner: Mutex<Inner>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl JobStore for MemStore {
    fn submit(&self, key: Option<&str>, spec_json: &str) -> io::Result<SubmitOutcome> {
        Ok(lock(&self.inner).submit(key, spec_json))
    }

    fn set_status(
        &self,
        id: &str,
        status: JobStatus,
        detail: Option<&str>,
    ) -> io::Result<()> {
        lock(&self.inner).set_status(id, status, detail);
        Ok(())
    }

    fn get(&self, id: &str) -> Option<StoredJob> {
        lock(&self.inner).jobs.get(id).cloned()
    }

    fn jobs(&self) -> Vec<StoredJob> {
        lock(&self.inner).jobs.values().cloned().collect()
    }
}

/// One journal line: a job state transition. Submission lines carry
/// the spec (and key); later transitions carry only the new status.
#[derive(Debug, Serialize, Deserialize)]
struct JournalLine {
    seq: u64,
    id: String,
    status: String,
    #[serde(default)]
    key: Option<String>,
    #[serde(default)]
    spec: Option<String>,
    #[serde(default)]
    detail: Option<String>,
}

/// What journal replay found.
#[derive(Debug, Default, Clone)]
pub struct ReplayReport {
    /// Jobs reconstructed.
    pub jobs: usize,
    /// Torn / unparseable lines ignored (crash debris).
    pub torn_lines: usize,
    /// Status lines referencing ids with no submission line (a torn
    /// submission followed by later appends); ignored.
    pub orphan_lines: usize,
    /// Ids of jobs left `queued` or `running` — work to re-enqueue.
    pub pending: Vec<String>,
}

/// Durable store: every transition is one fsynced JSON line in
/// `jobs.jsonl`. [`FileStore::open`] replays the journal, so a
/// SIGKILL'd server reconstructs exactly the admitted state.
pub struct FileStore {
    journal: PathBuf,
    state: Mutex<InnerWithSeq>,
}

struct InnerWithSeq {
    inner: Inner,
    seq: u64,
}

impl FileStore {
    /// Opens (or creates) the journal under `state_dir` and replays it.
    pub fn open(state_dir: &Path) -> io::Result<(FileStore, ReplayReport)> {
        fs::create_dir_all(state_dir)?;
        let journal = state_dir.join("jobs.jsonl");
        let (inner, seq, report) = match fs::read_to_string(&journal) {
            Ok(text) => {
                // A torn final line has no trailing newline; seal it
                // now so the next append starts a fresh line instead
                // of being swallowed by the debris.
                if !text.is_empty() && !text.ends_with('\n') {
                    let mut file =
                        OpenOptions::new().append(true).open(&journal)?;
                    file.write_all(b"\n")?;
                    file.sync_all()?;
                }
                replay(&text)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                (Inner::default(), 0, ReplayReport::default())
            }
            Err(e) => return Err(e),
        };
        let store = FileStore {
            journal,
            state: Mutex::new(InnerWithSeq { inner, seq }),
        };
        Ok((store, report))
    }

    fn append(&self, line: &JournalLine) -> io::Result<()> {
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.journal)?;
        let mut serialized =
            serde_json::to_string(line).map_err(io::Error::other)?;
        serialized.push('\n');
        file.write_all(serialized.as_bytes())?;
        file.sync_all()
    }

    /// Fsyncs the journal file and its directory — the drain path's
    /// final flush (appends are already fsynced; this pins the
    /// directory entry too).
    pub fn flush(&self) -> io::Result<()> {
        if let Ok(file) = File::open(&self.journal) {
            file.sync_all()?;
        }
        if let Some(dir) = self.journal.parent() {
            if let Ok(dir_handle) = File::open(dir) {
                let _ = dir_handle.sync_all();
            }
        }
        Ok(())
    }
}

/// Replays journal text into store state. Torn lines (no trailing
/// newline, unparseable JSON) and status lines for unknown ids are
/// counted and skipped; duplicate submissions of the same id are
/// idempotent.
fn replay(text: &str) -> (Inner, u64, ReplayReport) {
    let mut inner = Inner::default();
    let mut report = ReplayReport::default();
    let mut seq = 0u64;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(entry) = serde_json::from_str::<JournalLine>(line) else {
            report.torn_lines += 1;
            continue;
        };
        seq = seq.max(entry.seq.saturating_add(1));
        let Some(status) = JobStatus::parse(&entry.status) else {
            report.torn_lines += 1;
            continue;
        };
        match entry.spec {
            Some(spec) => {
                // A submission line. Duplicates are idempotent: the
                // first wins (a re-sent line cannot change the spec).
                if !inner.jobs.contains_key(&entry.id) {
                    let job = StoredJob {
                        id: entry.id.clone(),
                        key: entry.key.clone(),
                        spec_json: spec,
                        status,
                        detail: entry.detail,
                    };
                    if let Some(key) = &entry.key {
                        inner.by_key.insert(key.clone(), entry.id.clone());
                    }
                    if let Some(n) = entry
                        .id
                        .strip_prefix("exp-")
                        .and_then(|n| n.parse::<u64>().ok())
                    {
                        inner.next_job = inner.next_job.max(n + 1);
                    }
                    inner.jobs.insert(entry.id, job);
                }
            }
            None => {
                if !inner.set_status(&entry.id, status, entry.detail.as_deref()) {
                    report.orphan_lines += 1;
                }
            }
        }
    }
    report.jobs = inner.jobs.len();
    report.pending = inner
        .jobs
        .values()
        .filter(|j| !j.status.is_terminal())
        .map(|j| j.id.clone())
        .collect();
    (inner, seq, report)
}

impl JobStore for FileStore {
    fn submit(&self, key: Option<&str>, spec_json: &str) -> io::Result<SubmitOutcome> {
        let mut state = lock(&self.state);
        let outcome = state.inner.submit(key, spec_json);
        if let SubmitOutcome::Created(job) = &outcome {
            let seq = state.seq;
            state.seq += 1;
            self.append(&JournalLine {
                seq,
                id: job.id.clone(),
                status: job.status.as_str().to_string(),
                key: job.key.clone(),
                spec: Some(job.spec_json.clone()),
                detail: None,
            })?;
        }
        Ok(outcome)
    }

    fn set_status(
        &self,
        id: &str,
        status: JobStatus,
        detail: Option<&str>,
    ) -> io::Result<()> {
        let mut state = lock(&self.state);
        if !state.inner.set_status(id, status, detail) {
            return Ok(());
        }
        let seq = state.seq;
        state.seq += 1;
        self.append(&JournalLine {
            seq,
            id: id.to_string(),
            status: status.as_str().to_string(),
            key: None,
            spec: None,
            detail: detail.map(str::to_string),
        })
    }

    fn get(&self, id: &str) -> Option<StoredJob> {
        lock(&self.state).inner.jobs.get(id).cloned()
    }

    fn jobs(&self) -> Vec<StoredJob> {
        lock(&self.state).inner.jobs.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("tml-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn submit_dedup_and_status_roundtrip_through_reopen() {
        let dir = tmp_dir("roundtrip");
        let (store, report) = FileStore::open(&dir).unwrap();
        assert_eq!(report.jobs, 0);

        let SubmitOutcome::Created(job) =
            store.submit(Some("k1"), "{\"spec\":1}").unwrap()
        else {
            panic!("expected creation");
        };
        assert_eq!(job.id, "exp-000000");
        let SubmitOutcome::Deduplicated(dup) =
            store.submit(Some("k1"), "{\"spec\":1}").unwrap()
        else {
            panic!("expected dedup");
        };
        assert_eq!(dup.id, job.id);
        store
            .set_status(&job.id, JobStatus::Running, None)
            .unwrap();

        let (reopened, report) = FileStore::open(&dir).unwrap();
        assert_eq!(report.jobs, 1);
        assert_eq!(report.pending, vec!["exp-000000".to_string()]);
        let job = reopened.get("exp-000000").unwrap();
        assert_eq!(job.status, JobStatus::Running);
        assert_eq!(job.key.as_deref(), Some("k1"));

        // Dedup and id allocation both survive the reopen.
        let SubmitOutcome::Deduplicated(_) =
            reopened.submit(Some("k1"), "{}").unwrap()
        else {
            panic!("dedup lost across reopen");
        };
        let SubmitOutcome::Created(next) =
            reopened.submit(None, "{}").unwrap()
        else {
            panic!("expected creation");
        };
        assert_eq!(next.id, "exp-000001");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_ignored() {
        let dir = tmp_dir("torn");
        let (store, _) = FileStore::open(&dir).unwrap();
        store.submit(None, "{}").unwrap();
        let journal = dir.join("jobs.jsonl");
        let mut text = fs::read_to_string(&journal).unwrap();
        text.push_str("{\"seq\":99,\"id\":\"exp-0000"); // torn mid-write
        fs::write(&journal, text).unwrap();

        let (_, report) = FileStore::open(&dir).unwrap();
        assert_eq!(report.jobs, 1);
        assert_eq!(report.torn_lines, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_for_unknown_id_is_orphaned_not_fatal() {
        let dir = tmp_dir("orphan");
        fs::write(
            dir.join("jobs.jsonl"),
            "{\"seq\":0,\"id\":\"exp-000007\",\"status\":\"done\"}\n",
        )
        .unwrap();
        let (store, report) = FileStore::open(&dir).unwrap();
        assert_eq!(report.orphan_lines, 1);
        assert!(store.jobs().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
