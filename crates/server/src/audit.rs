//! Append-only audit log.
//!
//! Every run-affecting event appends one fsynced JSON line to
//! `audit.jsonl`: what happened, to which job, under which seed and
//! configuration hash, against which snapshot format version. The log
//! is never rewritten or truncated — it is the service's provenance
//! trail, answering "which bits produced this artifact" long after
//! the job itself is gone.

use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use treadmill_sim_core::snapshot::SNAPSHOT_VERSION;

use crate::jsonx::Obj;

/// One audit line.
#[derive(Debug)]
pub struct AuditEntry<'a> {
    /// Wall-clock milliseconds since the Unix epoch. Provenance only —
    /// nothing deterministic reads it back.
    pub unix_ms: u64,
    /// Event tag (`submitted`, `run-started`, `run-done`,
    /// `run-interrupted`, `run-failed`, `recovered`).
    pub event: &'a str,
    /// Job id.
    pub job: &'a str,
    /// The experiment's master seed.
    pub seed: u64,
    /// FNV-1a hash of the configuration JSON — matches the sweep
    /// manifest's `config_hash`.
    pub config_hash: &'a str,
    /// Checkpoint envelope version the run writes ([`SNAPSHOT_VERSION`]).
    pub snapshot_version: u32,
    /// Free-form detail (`fresh` / `resume` / an error message).
    pub detail: &'a str,
}

impl AuditEntry<'_> {
    /// One-line JSON encoding (the journal record format).
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("unix_ms", self.unix_ms)
            .str("event", self.event)
            .str("job", self.job)
            .u64("seed", self.seed)
            .str("config_hash", self.config_hash)
            .u64("snapshot_version", u64::from(self.snapshot_version))
            .str("detail", self.detail)
            .build()
    }
}

/// The append-only log writer.
#[derive(Debug)]
pub struct AuditLog {
    path: PathBuf,
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

impl AuditLog {
    /// An audit log at `state_dir/audit.jsonl`.
    pub fn open(state_dir: &Path) -> AuditLog {
        AuditLog { path: state_dir.join("audit.jsonl") }
    }

    /// Where the log lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event, fsynced. Stamps `unix_ms` and
    /// `snapshot_version` itself.
    pub fn record(
        &self,
        event: &str,
        job: &str,
        seed: u64,
        config_hash: &str,
        detail: &str,
    ) -> io::Result<()> {
        let entry = AuditEntry {
            unix_ms: unix_ms(),
            event,
            job,
            seed,
            config_hash,
            snapshot_version: SNAPSHOT_VERSION,
            detail,
        };
        let mut serialized = entry.to_json();
        serialized.push('\n');
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(serialized.as_bytes())?;
        file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn records_are_appended_with_provenance_fields() {
        let dir = std::env::temp_dir()
            .join(format!("tml-audit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let log = AuditLog::open(&dir);
        log.record("submitted", "exp-000000", 7, "00ff", "fresh").unwrap();
        log.record("run-done", "exp-000000", 7, "00ff", "").unwrap();
        let text = fs::read_to_string(log.path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["event"], "submitted");
        assert_eq!(first["seed"], 7u64);
        assert_eq!(first["config_hash"], "00ff");
        assert_eq!(first["snapshot_version"], u64::from(SNAPSHOT_VERSION));
        let _ = fs::remove_dir_all(&dir);
    }
}
