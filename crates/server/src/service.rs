//! The service itself: acceptor, worker pool, executor, router.
//!
//! Thread layout (all plain `std::thread`, no async runtime):
//!
//! ```text
//! acceptor ──(bounded conn queue)──> N http workers ──> router
//!                                        │
//!                    POST /experiments ──┴──(bounded job queue)──> executor
//!                                                                     │
//!                                                     run_sweep_controlled
//! ```
//!
//! Overload behavior is explicit at every hop: the acceptor sheds
//! connections past the cap with an immediate `503`, the job queue
//! sheds submissions with `503` + `Retry-After`, and every socket
//! carries read/write timeouts so no worker blocks past its budget.
//! [`ServerHandle::drain`] runs the graceful-shutdown sequence: stop
//! accepting, answer queued connections, cancel the in-flight sweep
//! at its next checkpoint (sealing it), flush the journal, exit.

use std::fmt;
use std::fs;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use std::collections::BTreeMap;

use treadmill_core::sweep::write_atomic;
use treadmill_core::{
    run_factorial_sweep_controlled, run_sweep_controlled, SweepControl, SweepEvent,
    SweepOptions,
};

use crate::audit::AuditLog;
use crate::http::{self, HttpError, Request};
use crate::job::{ExperimentSpec, JobStatus};
use crate::jsonx::Obj;
use crate::queue::{BoundedQueue, Pop, Push};
use crate::store::{FileStore, JobStore, MemStore, SubmitOutcome};

/// Which [`JobStore`] backend to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Volatile; forgets everything on exit. For tests and demos.
    Memory,
    /// Journaled `jobs.jsonl` under the state directory (the default).
    File,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port 0 picks a free port (written to
    /// `state_dir/addr.txt` for discovery).
    pub addr: String,
    /// Root for the journal, audit log, and per-job artifact dirs.
    pub state_dir: PathBuf,
    /// Replay the journal and resume pending jobs instead of refusing
    /// to start over them.
    pub resume: bool,
    /// Admission-queue capacity; submissions beyond it get `503`.
    pub queue_cap: usize,
    /// HTTP worker threads.
    pub http_workers: usize,
    /// Connection cap (queued + in-flight); accepts beyond it get an
    /// immediate `503`.
    pub max_conns: usize,
    /// Per-socket read timeout.
    pub read_timeout: Duration,
    /// Per-socket write timeout.
    pub write_timeout: Duration,
    /// Longest a `/events` stream stays open before asking the client
    /// to reconnect (bounds worker occupancy).
    pub events_window: Duration,
    /// Store backend.
    pub store: StoreKind,
}

impl ServeOptions {
    /// Defaults tuned for tests and small deployments.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            state_dir: state_dir.into(),
            resume: false,
            queue_cap: 8,
            http_workers: 4,
            max_conns: 32,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            events_window: Duration::from_secs(10),
            store: StoreKind::File,
        }
    }
}

/// Why the service refused to start.
#[derive(Debug)]
pub enum StartError {
    /// Filesystem or socket trouble.
    Io(io::Error),
    /// The journal holds pending (queued/running) jobs and `--resume`
    /// was not given — starting fresh would orphan checkpointed work.
    PendingWithoutResume(usize),
}

impl fmt::Display for StartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartError::Io(e) => write!(f, "cannot start service: {e}"),
            StartError::PendingWithoutResume(n) => write!(
                f,
                "journal holds {n} pending job(s); start with --resume to \
                 continue them (or point --state-dir somewhere fresh)"
            ),
        }
    }
}

impl std::error::Error for StartError {}

impl From<io::Error> for StartError {
    fn from(e: io::Error) -> Self {
        StartError::Io(e)
    }
}

/// In-memory progress buffer for one job, streamed by `/events`.
/// Bounded: past [`MAX_PROGRESS_LINES`] lines, older detail is
/// dropped in favor of a truncation marker (memory stays bounded no
/// matter how long a job runs).
struct Progress {
    lines: Mutex<Vec<String>>,
    dropped: AtomicBool,
    done: AtomicBool,
}

const MAX_PROGRESS_LINES: usize = 4096;

impl Progress {
    fn new() -> Self {
        Progress {
            lines: Mutex::new(Vec::new()),
            dropped: AtomicBool::new(false),
            done: AtomicBool::new(false),
        }
    }

    fn push(&self, line: String) {
        let mut lines =
            self.lines.lock().unwrap_or_else(PoisonError::into_inner);
        if lines.len() >= MAX_PROGRESS_LINES {
            if !self.dropped.swap(true, Ordering::Relaxed) {
                lines.push("… further progress truncated".to_string());
            }
            return;
        }
        lines.push(line);
    }

    /// Lines from `from` onward, plus whether the job is finished.
    fn snapshot(&self, from: usize) -> (Vec<String>, bool) {
        let lines =
            self.lines.lock().unwrap_or_else(PoisonError::into_inner);
        let tail = if from < lines.len() {
            lines[from..].to_vec()
        } else {
            Vec::new()
        };
        (tail, self.done.load(Ordering::SeqCst))
    }

    fn count(&self) -> usize {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    fn finish(&self) {
        self.done.store(true, Ordering::SeqCst);
    }
}

struct Shared {
    opts: ServeOptions,
    store: Box<dyn JobStore>,
    jobs: BoundedQueue<String>,
    conns: BoundedQueue<TcpStream>,
    audit: AuditLog,
    draining: AtomicBool,
    progress: Mutex<BTreeMap<String, Arc<Progress>>>,
}

impl Shared {
    fn job_dir(&self, id: &str) -> PathBuf {
        self.opts.state_dir.join("jobs").join(id)
    }

    fn progress_for(&self, id: &str) -> Arc<Progress> {
        let mut map =
            self.progress.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(id.to_string())
                .or_insert_with(|| Arc::new(Progress::new())),
        )
    }

    fn find_progress(&self, id: &str) -> Option<Arc<Progress>> {
        self.progress
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id)
            .map(Arc::clone)
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// A running service. Dropping the handle does NOT stop it; call
/// [`ServerHandle::drain`] then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins graceful shutdown: stop accepting, drop queued jobs
    /// (they stay journaled), cancel the in-flight sweep at its next
    /// checkpoint boundary.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.jobs.close(false);
        // The acceptor closes the connection queue (draining queued
        // connections) when it observes the flag and exits.
    }

    /// Waits for every thread to exit. An `Err` means a worker
    /// panicked — a bug, since the panic budget is zero.
    pub fn join(self) -> Result<(), String> {
        let mut panicked = 0usize;
        for t in self.threads {
            if t.join().is_err() {
                panicked += 1;
            }
        }
        if panicked == 0 {
            Ok(())
        } else {
            Err(format!("{panicked} service thread(s) panicked"))
        }
    }
}

/// Starts the service: opens the store (replaying the journal for the
/// file backend), binds the listener, writes `addr.txt`, re-enqueues
/// pending jobs under `--resume`, and spawns the thread pool.
pub fn start(opts: ServeOptions) -> Result<ServerHandle, StartError> {
    fs::create_dir_all(&opts.state_dir)?;
    let audit = AuditLog::open(&opts.state_dir);

    let (store, pending): (Box<dyn JobStore>, Vec<String>) = match opts.store {
        StoreKind::Memory => (Box::new(MemStore::new()), Vec::new()),
        StoreKind::File => {
            let (store, report) = FileStore::open(&opts.state_dir)?;
            if !report.pending.is_empty() && !opts.resume {
                return Err(StartError::PendingWithoutResume(
                    report.pending.len(),
                ));
            }
            (Box::new(store), report.pending)
        }
    };

    let listener = TcpListener::bind(&opts.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    write_atomic(
        &opts.state_dir.join("addr.txt"),
        format!("{addr}\n").as_bytes(),
    )?;

    let shared = Arc::new(Shared {
        jobs: BoundedQueue::new(opts.queue_cap),
        conns: BoundedQueue::new(opts.max_conns),
        audit,
        draining: AtomicBool::new(false),
        progress: Mutex::new(BTreeMap::new()),
        store,
        opts,
    });

    // Re-admit journaled pending jobs (recovery bypasses the cap:
    // they were admitted under it originally).
    for id in pending {
        if let Some(job) = shared.store.get(&id) {
            let (seed, hash) = spec_provenance(&job.spec_json);
            let _ = shared.audit.record("recovered", &id, seed, &hash, "");
            shared.progress_for(&id).push(format!(
                "job {id}: recovered from journal ({})",
                job.status
            ));
            shared.jobs.push_unchecked(id);
        }
    }

    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("tml-acceptor".to_string())
                .spawn(move || acceptor_loop(&shared, &listener))?,
        );
    }
    for i in 0..shared.opts.http_workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name(format!("tml-http-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("tml-executor".to_string())
                .spawn(move || executor_loop(&shared))?,
        );
    }

    Ok(ServerHandle { addr, shared, threads })
}

/// Best-effort seed + config-hash extraction for audit lines when the
/// spec predates this process (recovery path).
fn spec_provenance(spec_json: &str) -> (u64, String) {
    match ExperimentSpec::from_json(spec_json) {
        Ok(spec) => (spec.config.seed, spec.config_hash()),
        Err(_) => (0, "unknown".to_string()),
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
                let _ =
                    stream.set_write_timeout(Some(shared.opts.write_timeout));
                match shared.conns.push(stream) {
                    Push::Accepted { .. } => {}
                    Push::Shed(mut stream) | Push::Closed(mut stream) => {
                        // Connection cap reached: shed at the door with
                        // an explicit 503 instead of queueing unboundedly.
                        let _ = http::respond(
                            &mut stream,
                            503,
                            "application/json",
                            br#"{"error":{"kind":"overloaded","message":"connection cap reached"}}"#,
                            &[("Retry-After", "1")],
                        );
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    // Stop taking new connections but answer the ones already queued.
    shared.conns.close(true);
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        match shared.conns.pop(Duration::from_millis(50)) {
            Pop::Item(mut stream) => handle_conn(shared, &mut stream),
            Pop::Empty => {}
            Pop::Closed => break,
        }
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: &mut TcpStream) {
    let req = match http::read_request(stream) {
        Ok(req) => req,
        Err(HttpError::Closed) => return,
        Err(HttpError::Timeout) => {
            let _ = error_response(stream, 408, "timeout", "request timed out");
            return;
        }
        Err(HttpError::TooLarge(what)) => {
            let _ = error_response(stream, 413, "too-large", what);
            return;
        }
        Err(HttpError::Malformed(what)) => {
            let _ = error_response(stream, 400, "malformed", what);
            return;
        }
        Err(HttpError::Io(_)) => return,
    };
    route(shared, &req, stream);
}

fn error_body(kind: &str, message: &str) -> String {
    Obj::new()
        .raw(
            "error",
            &Obj::new().str("kind", kind).str("message", message).build(),
        )
        .build()
}

fn error_response(
    stream: &mut TcpStream,
    status: u16,
    kind: &str,
    message: &str,
) -> io::Result<()> {
    http::respond(
        stream,
        status,
        "application/json",
        error_body(kind, message).as_bytes(),
        &[],
    )
}

fn json_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    http::respond(stream, status, "application/json", body.as_bytes(), extra)
}

fn route(shared: &Arc<Shared>, req: &Request, stream: &mut TcpStream) {
    let path = req.path.trim_matches('/').to_string();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let _ = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            http::respond(stream, 200, "text/plain", b"ok\n", &[])
        }
        ("GET", ["readyz"]) => handle_readyz(shared, stream),
        ("POST", ["experiments"]) => handle_submit(shared, req, stream),
        ("GET", ["experiments", id]) => handle_status(shared, id, stream),
        ("GET", ["experiments", id, "events"]) => {
            handle_events(shared, id, stream)
        }
        ("GET", ["experiments", id, "attribution"]) => {
            handle_artifact(shared, id, "attribution.tsv", stream)
        }
        ("GET", ["experiments", id, "summary"]) => {
            handle_artifact(shared, id, "summary.tsv", stream)
        }
        ("GET", ["experiments", id, "screen"]) => {
            handle_artifact(shared, id, "screen.tsv", stream)
        }
        ("GET", ["experiments", id, "factorial"]) => {
            handle_artifact(shared, id, "factorial.tsv", stream)
        }
        ("POST" | "GET", _) => {
            error_response(stream, 404, "not-found", "no such route")
        }
        _ => error_response(stream, 405, "method", "unsupported method"),
    };
}

fn handle_readyz(shared: &Arc<Shared>, stream: &mut TcpStream) -> io::Result<()> {
    if shared.draining() {
        return json_response(
            stream,
            503,
            &Obj::new().str("status", "draining").build(),
            &[("Retry-After", "1")],
        );
    }
    json_response(
        stream,
        200,
        &Obj::new()
            .str("status", "ready")
            .u64("queue_depth", shared.jobs.depth() as u64)
            .u64("queue_cap", shared.jobs.cap() as u64)
            .build(),
        &[],
    )
}

fn shed_response(stream: &mut TcpStream, why: &str) -> io::Result<()> {
    json_response(
        stream,
        503,
        &error_body("overloaded", why),
        &[("Retry-After", "1")],
    )
}

fn handle_submit(
    shared: &Arc<Shared>,
    req: &Request,
    stream: &mut TcpStream,
) -> io::Result<()> {
    if shared.draining() {
        return shed_response(stream, "server is draining");
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return error_response(stream, 400, "malformed", "body is not UTF-8");
    };
    let spec = match ExperimentSpec::from_json(body) {
        Ok(spec) => spec,
        Err(e) => {
            return http::respond(
                stream,
                400,
                "application/json",
                &e.to_json_body(),
                &[],
            );
        }
    };
    let key = req.header("idempotency-key");
    let outcome = match shared.store.submit(key, &spec.canonical_json()) {
        Ok(outcome) => outcome,
        Err(e) => {
            return error_response(stream, 500, "store", &e.to_string());
        }
    };
    match outcome {
        SubmitOutcome::Deduplicated(job) => json_response(
            stream,
            200,
            &Obj::new()
                .str("id", &job.id)
                .str("status", job.status.as_str())
                .bool("deduplicated", true)
                .build(),
            &[],
        ),
        SubmitOutcome::Created(job) => {
            shared.progress_for(&job.id).push(format!(
                "job {}: queued ({} cells)",
                job.id, spec.runs
            ));
            let _ = shared.audit.record(
                "submitted",
                &job.id,
                spec.config.seed,
                &spec.config_hash(),
                key.unwrap_or(""),
            );
            match shared.jobs.push(job.id.clone()) {
                Push::Accepted { depth } => json_response(
                    stream,
                    201,
                    &Obj::new()
                        .str("id", &job.id)
                        .str("status", "queued")
                        .u64("queue_depth", depth as u64)
                        .build(),
                    &[],
                ),
                Push::Shed(_) | Push::Closed(_) => {
                    // Journal the shed so the job is not silently lost,
                    // then tell the client to retry.
                    let _ = shared.store.set_status(
                        &job.id,
                        JobStatus::Failed,
                        Some("shed at admission: queue full"),
                    );
                    shed_response(stream, "admission queue full")
                }
            }
        }
    }
}

fn handle_status(
    shared: &Arc<Shared>,
    id: &str,
    stream: &mut TcpStream,
) -> io::Result<()> {
    let Some(job) = shared.store.get(id) else {
        return error_response(stream, 404, "not-found", "no such experiment");
    };
    let events = shared.find_progress(id).map_or(0, |p| p.count());
    json_response(
        stream,
        200,
        &Obj::new()
            .str("id", &job.id)
            .str("status", job.status.as_str())
            .opt_str("detail", job.detail.as_deref())
            .u64("events", events as u64)
            .build(),
        &[],
    )
}

fn handle_events(
    shared: &Arc<Shared>,
    id: &str,
    stream: &mut TcpStream,
) -> io::Result<()> {
    if shared.store.get(id).is_none() {
        return error_response(stream, 404, "not-found", "no such experiment");
    }
    let progress = shared.progress_for(id);
    let deadline = Instant::now() + shared.opts.events_window;
    let mut cursor = 0usize;
    http::start_chunked(stream, 200, "text/plain; charset=utf-8")?;
    loop {
        let (lines, done) = progress.snapshot(cursor);
        cursor += lines.len();
        for line in &lines {
            http::write_chunk(stream, format!("{line}\n").as_bytes())?;
        }
        if done {
            http::write_chunk(stream, b"end\n")?;
            break;
        }
        if shared.draining() {
            http::write_chunk(stream, b"server draining; reconnect later\n")?;
            break;
        }
        if Instant::now() >= deadline {
            http::write_chunk(stream, b"stream window elapsed; reconnect\n")?;
            break;
        }
        thread::sleep(Duration::from_millis(25));
    }
    http::end_chunked(stream)
}

fn handle_artifact(
    shared: &Arc<Shared>,
    id: &str,
    name: &str,
    stream: &mut TcpStream,
) -> io::Result<()> {
    let Some(job) = shared.store.get(id) else {
        return error_response(stream, 404, "not-found", "no such experiment");
    };
    match job.status {
        JobStatus::Done => {}
        JobStatus::Failed => {
            return error_response(
                stream,
                409,
                "failed",
                job.detail.as_deref().unwrap_or("experiment failed"),
            );
        }
        JobStatus::Queued | JobStatus::Running => {
            return error_response(
                stream,
                409,
                "not-ready",
                "experiment still in progress",
            );
        }
    }
    match fs::read(shared.job_dir(id).join(name)) {
        Ok(bytes) => http::respond(
            stream,
            200,
            "text/tab-separated-values",
            &bytes,
            &[],
        ),
        Err(e) => error_response(stream, 500, "artifact", &e.to_string()),
    }
}

fn executor_loop(shared: &Arc<Shared>) {
    loop {
        match shared.jobs.pop(Duration::from_millis(50)) {
            Pop::Item(id) => execute_job(shared, &id),
            Pop::Empty => {}
            Pop::Closed => break,
        }
    }
}

fn render_event(event: &SweepEvent) -> String {
    match event {
        SweepEvent::CellSkipped { cell } => {
            format!("cell {cell}: skipped (already done)")
        }
        SweepEvent::CellStarted { cell, seed, resumed_at_events } => {
            if *resumed_at_events > 0 {
                format!(
                    "cell {cell}: resumed at {resumed_at_events} events (seed {seed})"
                )
            } else {
                format!("cell {cell}: started (seed {seed})")
            }
        }
        SweepEvent::Checkpointed { cell, events, samples, p99_us } => format!(
            "cell {cell}: checkpoint @ {events} events ({samples} samples, p99 {p99_us:.1}us)"
        ),
        SweepEvent::CellDone { cell, samples, p99_us } => {
            format!("cell {cell}: done ({samples} samples, p99 {p99_us:.1}us)")
        }
        SweepEvent::Interrupted { cell } => match cell {
            Some(cell) => format!(
                "interrupted in cell {cell}: checkpoint sealed; resume continues it"
            ),
            None => "interrupted between cells".to_string(),
        },
    }
}

fn execute_job(shared: &Arc<Shared>, id: &str) {
    let Some(job) = shared.store.get(id) else {
        return;
    };
    let progress = shared.progress_for(id);
    let spec = match ExperimentSpec::from_json(&job.spec_json) {
        Ok(spec) => spec,
        Err(e) => {
            let detail = format!("journaled spec no longer validates: {e}");
            let _ = shared.store.set_status(id, JobStatus::Failed, Some(&detail));
            let _ = shared.audit.record("run-failed", id, 0, "unknown", &detail);
            progress.push(format!("job {id}: failed — {detail}"));
            progress.finish();
            return;
        }
    };
    let config_hash = spec.config_hash();
    let out_dir = shared.job_dir(id);
    let resume = out_dir.join("manifest.jsonl").exists();
    let _ = shared.store.set_status(id, JobStatus::Running, None);
    let _ = shared.audit.record(
        "run-started",
        id,
        spec.config.seed,
        &config_hash,
        if resume { "resume" } else { "fresh" },
    );
    progress.push(format!(
        "job {id}: running {} cell(s){}",
        spec.runs,
        if resume { ", resuming from journal" } else { "" }
    ));

    let opts = SweepOptions {
        runs: spec.runs,
        ckpt_events: spec.ckpt_events,
        resume,
        ..SweepOptions::default()
    };
    let mut on_event = |event: SweepEvent| progress.push(render_event(&event));
    let mut ctrl = SweepControl {
        cancel: Some(&shared.draining),
        progress: Some(&mut on_event),
    };
    // A spec with a `screen` block runs the two-stage screened
    // factorial sweep (analytic screen, then DES on flagged cells);
    // otherwise the classic repeated-run sweep. The whole computation
    // runs under `catch_unwind`: engine invariant violations abort by
    // panicking, and that must poison only this job — the journal and
    // admission state the service still owns stay consistent because
    // the sweep mutates nothing of `Shared` directly.
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || {
            if let Some(screen) = spec.config.screen {
                progress.push(format!(
                    "job {id}: analytic screen over 16 hardware cells (threshold {:.3})",
                    screen.threshold
                ));
                match treadmill_inference::screen_hardware(&spec.config, screen.threshold) {
                    Ok(plan) => {
                        let sweep_plan = plan.to_sweep_plan();
                        progress.push(format!(
                            "job {id}: screen flagged {} of 16 cells for simulation",
                            sweep_plan.cells.iter().filter(|c| c.flagged).count()
                        ));
                        run_factorial_sweep_controlled(
                            &spec.config,
                            &out_dir,
                            &opts,
                            Some(&sweep_plan),
                            &mut ctrl,
                        )
                        .map(|o| (o.interrupted, o.warnings))
                    }
                    Err(e) => Err(treadmill_core::SweepError::Screen {
                        message: e.to_string(),
                    }),
                }
            } else {
                run_sweep_controlled(&spec.config, &out_dir, &opts, &mut ctrl)
                    .map(|o| (o.interrupted, o.warnings))
            }
        },
    ));
    let result: Result<(bool, Vec<String>), String> = match caught {
        Ok(outcome) => outcome.map_err(|e| e.to_string()),
        Err(payload) => Err(format!(
            "sweep aborted by engine invariant panic: {}",
            panic_text(&payload)
        )),
    };
    match result {
        Ok((interrupted, _)) if interrupted => {
            // Deliberately left `running`: the journal + sealed
            // checkpoint are exactly what `--resume` picks up.
            let _ = shared.audit.record(
                "run-interrupted",
                id,
                spec.config.seed,
                &config_hash,
                "drain: checkpoint sealed",
            );
            progress.push(format!(
                "job {id}: interrupted by drain; restart with --resume"
            ));
        }
        Ok((_, warnings)) => {
            let _ = shared.store.set_status(id, JobStatus::Done, None);
            let _ = shared.audit.record(
                "run-done",
                id,
                spec.config.seed,
                &config_hash,
                "",
            );
            for warning in &warnings {
                progress.push(format!("warning: {warning}"));
            }
            progress.push(format!("job {id}: done"));
            progress.finish();
        }
        Err(detail) => {
            let _ = shared.store.set_status(id, JobStatus::Failed, Some(&detail));
            let _ = shared.audit.record(
                "run-failed",
                id,
                spec.config.seed,
                &config_hash,
                &detail,
            );
            progress.push(format!("job {id}: failed — {detail}"));
            progress.finish();
        }
    }
}

/// Best-effort text of a caught panic payload (`panic!` with a string
/// or a formatted message; anything else reports its opacity).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Reads `addr.txt` from a state dir — how tests and the CLI discover
/// a server bound to port 0.
pub fn read_addr_file(state_dir: &Path) -> io::Result<String> {
    Ok(fs::read_to_string(state_dir.join("addr.txt"))?
        .trim()
        .to_string())
}
