//! `treadmill-serve` — the load-testing service daemon.
//!
//! ```text
//! treadmill-serve --state-dir DIR [--addr HOST:PORT] [--resume]
//!                 [--queue-cap N] [--workers N] [--max-conns N]
//!                 [--mem-store]
//! ```
//!
//! Binds the HTTP service, prints the bound address (also written to
//! `DIR/addr.txt`), and runs until SIGTERM/SIGINT, at which point it
//! drains gracefully: stops accepting, seals the in-flight sweep's
//! checkpoint, flushes the journal, exits 0. A SIGKILL'd instance
//! restarted with `--resume` replays the journal and continues.

use std::process::ExitCode;
use std::thread;
use std::time::Duration;

use treadmill_server::service::{start, ServeOptions, StoreKind};
use treadmill_server::shutdown;

fn usage() -> &'static str {
    "usage: treadmill-serve --state-dir DIR [--addr HOST:PORT] [--resume]\n\
     \x20                   [--queue-cap N] [--workers N] [--max-conns N]\n\
     \x20                   [--mem-store]\n"
}

fn parse_args() -> Result<ServeOptions, String> {
    let mut state_dir: Option<String> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut resume = false;
    let mut queue_cap: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut max_conns: Option<usize> = None;
    let mut mem_store = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--state-dir" => state_dir = Some(take("--state-dir")?),
            "--addr" => addr = take("--addr")?,
            "--resume" => resume = true,
            "--queue-cap" => {
                queue_cap = Some(parse_count(&take("--queue-cap")?)?);
            }
            "--workers" => workers = Some(parse_count(&take("--workers")?)?),
            "--max-conns" => {
                max_conns = Some(parse_count(&take("--max-conns")?)?);
            }
            "--mem-store" => mem_store = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    let state_dir = state_dir.ok_or("missing --state-dir")?;

    let mut opts = ServeOptions::new(state_dir);
    opts.addr = addr;
    opts.resume = resume;
    if let Some(cap) = queue_cap {
        opts.queue_cap = cap;
    }
    if let Some(n) = workers {
        opts.http_workers = n;
    }
    if let Some(n) = max_conns {
        opts.max_conns = n;
    }
    if mem_store {
        opts.store = StoreKind::Memory;
    }
    Ok(opts)
}

fn parse_count(text: &str) -> Result<usize, String> {
    match text.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("expected a positive integer, got {text:?}")),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("treadmill-serve: {message}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    shutdown::install();
    let handle = match start(opts) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("treadmill-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("treadmill-serve listening on {}", handle.addr());

    while !shutdown::requested() {
        thread::sleep(Duration::from_millis(50));
    }
    eprintln!("treadmill-serve: shutdown requested; draining");
    handle.drain();
    match handle.join() {
        Ok(()) => {
            eprintln!("treadmill-serve: drained cleanly");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("treadmill-serve: {message}");
            ExitCode::FAILURE
        }
    }
}
