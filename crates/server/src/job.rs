//! Experiment specifications and job lifecycle states.
//!
//! An [`ExperimentSpec`] is the `POST /experiments` body: a
//! [`LoadTestConfig`] plus sweep-level knobs. Validation is front-
//! loaded — [`ExperimentSpec::validate`] composes the engine's typed
//! [`LoadTestConfig::validate`] with service-level caps so the `400`
//! path names the offending field and nothing invalid ever reaches a
//! worker thread.

use std::fmt;

use serde::{Deserialize, Serialize};
use treadmill_core::sweep::DEFAULT_CKPT_EVENTS;
use treadmill_core::{ConfigError, LoadTestConfig};
use treadmill_sim_core::fnv1a64;

/// Ceiling on the repeated-run count of one submission.
pub const MAX_RUNS_PER_JOB: u64 = 64;
/// Floor on the checkpoint interval — tighter intervals make the
/// snapshot cost dominate the run.
pub const MIN_CKPT_EVENTS: u64 = 1_000;

fn default_runs() -> u64 {
    6
}

fn default_ckpt_events() -> u64 {
    DEFAULT_CKPT_EVENTS
}

/// One submitted experiment: a load-test configuration plus sweep
/// orchestration knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// The load-test configuration to sweep.
    pub config: LoadTestConfig,
    /// Repeated-run cells to execute (the paper's repeated-run
    /// procedure; defaults to 6).
    #[serde(default = "default_runs")]
    pub runs: u64,
    /// Events between checkpoints of the running cell.
    #[serde(default = "default_ckpt_events")]
    pub ckpt_events: u64,
}

/// Why a submission was rejected — the typed `4xx` body.
#[derive(Debug)]
pub enum SpecError {
    /// The body was not valid JSON for the spec shape.
    Json(serde_json::Error),
    /// The embedded configuration failed engine validation.
    Config(ConfigError),
    /// A service-level knob is out of range.
    Invalid {
        /// Offending field.
        field: &'static str,
        /// Why it is rejected.
        message: String,
    },
}

impl SpecError {
    /// Machine-readable error kind for structured bodies.
    pub fn kind(&self) -> &'static str {
        match self {
            SpecError::Json(_) => "json",
            SpecError::Config(e) => e.kind(),
            SpecError::Invalid { .. } => "invalid",
        }
    }

    /// The offending field, when one can be named.
    pub fn field(&self) -> Option<&'static str> {
        match self {
            SpecError::Json(_) => None,
            SpecError::Config(e) => e.field(),
            SpecError::Invalid { field, .. } => Some(field),
        }
    }

    /// Renders the structured JSON error body served on the `400` path.
    pub fn to_json_body(&self) -> Vec<u8> {
        let error = crate::jsonx::Obj::new()
            .str("kind", self.kind())
            .opt_str("field", self.field())
            .str("message", &self.to_string())
            .build();
        crate::jsonx::Obj::new().raw("error", &error).build().into_bytes()
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid experiment JSON: {e}"),
            SpecError::Config(e) => write!(f, "{e}"),
            SpecError::Invalid { field, message } => {
                write!(f, "invalid experiment: {field}: {message}")
            }
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Json(e) => Some(e),
            SpecError::Config(e) => Some(e),
            SpecError::Invalid { .. } => None,
        }
    }
}

impl ExperimentSpec {
    /// Parses and validates a submission body.
    pub fn from_json(body: &str) -> Result<Self, SpecError> {
        let spec: ExperimentSpec =
            serde_json::from_str(body).map_err(SpecError::Json)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Validates the spec: engine-level config checks plus service
    /// caps on `runs` and `ckpt_events`.
    pub fn validate(&self) -> Result<(), SpecError> {
        self.config.validate().map_err(SpecError::Config)?;
        if self.runs == 0 || self.runs > MAX_RUNS_PER_JOB {
            return Err(SpecError::Invalid {
                field: "runs",
                message: format!(
                    "must be 1..={MAX_RUNS_PER_JOB}, got {}",
                    self.runs
                ),
            });
        }
        if self.ckpt_events < MIN_CKPT_EVENTS {
            return Err(SpecError::Invalid {
                field: "ckpt_events",
                message: format!(
                    "must be >= {MIN_CKPT_EVENTS}, got {}",
                    self.ckpt_events
                ),
            });
        }
        Ok(())
    }

    /// Compact canonical JSON, stored verbatim in the job journal.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// The configuration hash journaled by the sweep — same formula as
    /// `core/src/sweep.rs`, so the audit log and the sweep manifest
    /// agree.
    pub fn config_hash(&self) -> String {
        format!("{:016x}", fnv1a64(self.config.to_json().as_bytes()))
    }
}

/// Job lifecycle states, journaled on every transition.
///
/// ```text
/// queued ──> running ──> done
///               │
///               └──────> failed
/// ```
///
/// A drain or crash leaves a job `running`; restart with `--resume`
/// re-enqueues it and the sweep continues from its checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for the executor.
    Queued,
    /// The executor is running (or was running at crash time).
    Running,
    /// All cells finished; artifacts are complete.
    Done,
    /// The sweep returned an error; see the job's `detail`.
    Failed,
}

impl JobStatus {
    /// Journal encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }

    /// Inverse of [`JobStatus::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "queued" => Some(JobStatus::Queued),
            "running" => Some(JobStatus::Running),
            "done" => Some(JobStatus::Done),
            "failed" => Some(JobStatus::Failed),
            _ => None,
        }
    }

    /// True for states that will never change again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed)
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_json(rps: &str) -> String {
        format!(
            r#"{{"config":{{"workload":{{"workload":"memcached"}},
                 "target_rps":{rps},"clients":2,"connections_per_client":4,
                 "duration_ms":40,"warmup_ms":10,"seed":7}},"runs":2}}"#
        )
    }

    #[test]
    fn valid_spec_parses_with_defaults() {
        let spec = ExperimentSpec::from_json(&spec_json("50000")).unwrap();
        assert_eq!(spec.runs, 2);
        assert_eq!(spec.ckpt_events, DEFAULT_CKPT_EVENTS);
        assert_eq!(spec.config_hash().len(), 16);
    }

    #[test]
    fn bad_config_is_typed_not_panicking() {
        let err = ExperimentSpec::from_json(&spec_json("-1")).unwrap_err();
        assert_eq!(err.kind(), "invalid");
        assert_eq!(err.field(), Some("target_rps"));
        let body = String::from_utf8(err.to_json_body()).unwrap();
        assert!(body.contains("\"kind\":\"invalid\""), "{body}");
    }

    #[test]
    fn runs_cap_enforced() {
        let mut spec = ExperimentSpec::from_json(&spec_json("50000")).unwrap();
        spec.runs = MAX_RUNS_PER_JOB + 1;
        let err = spec.validate().unwrap_err();
        assert_eq!(err.field(), Some("runs"));
    }

    #[test]
    fn status_roundtrips() {
        for s in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
        ] {
            assert_eq!(JobStatus::parse(s.as_str()), Some(s));
        }
        assert!(JobStatus::Done.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
    }
}
