//! Bounded admission queue — the explicit load-shedding layer.
//!
//! The queue never blocks a producer and never grows past its cap:
//! [`BoundedQueue::push`] returns [`Push::Shed`] when full, which the
//! HTTP layer maps to `503` + `Retry-After`. Consumers block with a
//! timeout so they can poll shutdown flags between items.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// What a push did.
#[derive(Debug)]
pub enum Push<T> {
    /// Enqueued; `depth` is the queue length after the push.
    Accepted {
        /// Queue depth after the push.
        depth: usize,
    },
    /// The queue is full; the item is handed back.
    Shed(T),
    /// The queue is closed; the item is handed back.
    Closed(T),
}

/// What a pop returned.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item.
    Item(T),
    /// Timed out with the queue still open.
    Empty,
    /// The queue is closed and (for non-draining closes) cleared.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue with explicit shed and close semantics.
pub struct BoundedQueue<T> {
    cap: usize,
    state: Mutex<State<T>>,
    cond: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue that holds at most `cap` items.
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            cap,
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            cond: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The capacity this queue sheds beyond.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Non-blocking enqueue: full queues shed instead of waiting.
    pub fn push(&self, item: T) -> Push<T> {
        let mut state = self.lock();
        if state.closed {
            return Push::Closed(item);
        }
        if state.items.len() >= self.cap {
            return Push::Shed(item);
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.cond.notify_one();
        Push::Accepted { depth }
    }

    /// Enqueue that ignores the cap — recovery-time re-admission of
    /// journaled jobs, which were admitted under the cap originally.
    pub fn push_unchecked(&self, item: T) {
        let mut state = self.lock();
        if !state.closed {
            state.items.push_back(item);
            drop(state);
            self.cond.notify_one();
        }
    }

    /// Blocking dequeue with a timeout, so consumers can interleave
    /// shutdown checks.
    pub fn pop(&self, timeout: Duration) -> Pop<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Pop::Item(item);
            }
            if state.closed {
                return Pop::Closed;
            }
            let (next, wait) = self
                .cond
                .wait_timeout(state, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if wait.timed_out() && state.items.is_empty() && !state.closed {
                return Pop::Empty;
            }
        }
    }

    /// Closes the queue. With `drain_remaining`, already-queued items
    /// are still handed out (HTTP connections get their responses);
    /// without it they are dropped on the floor (queued jobs stay
    /// journaled and re-enqueue on restart).
    pub fn close(&self, drain_remaining: bool) {
        let mut state = self.lock();
        state.closed = true;
        if !drain_remaining {
            state.items.clear();
        }
        drop(state);
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sheds_at_cap_and_reports_depth() {
        let q = BoundedQueue::new(2);
        assert!(matches!(q.push(1), Push::Accepted { depth: 1 }));
        assert!(matches!(q.push(2), Push::Accepted { depth: 2 }));
        assert!(matches!(q.push(3), Push::Shed(3)));
        assert_eq!(q.depth(), 2);
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item(1)));
    }

    #[test]
    fn close_without_drain_drops_items() {
        let q = BoundedQueue::new(4);
        let _ = q.push(1);
        q.close(false);
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Closed));
        assert!(matches!(q.push(2), Push::Closed(2)));
    }

    #[test]
    fn close_with_drain_hands_out_remaining() {
        let q = BoundedQueue::new(4);
        let _ = q.push(1);
        let _ = q.push(2);
        q.close(true);
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item(1)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item(2)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Closed));
    }

    #[test]
    fn pop_wakes_on_cross_thread_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop(Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        let _ = q.push(7u32);
        assert!(matches!(consumer.join().unwrap(), Pop::Item(7)));
    }
}
