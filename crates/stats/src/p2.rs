//! The P² (piecewise-parabolic) streaming quantile estimator
//! (Jain & Chlamtac, 1985).
//!
//! Treadmill's adaptive histogram needs a calibration phase before it
//! can bin; P² needs none and uses five markers of constant memory.
//! It is provided as an alternative aggregation backend and as a
//! cross-check for the histogram's estimates: both must agree at
//! steady state, and the ablation benchmarks compare their costs.

/// A streaming estimator of one quantile using the P² algorithm.
///
/// # Examples
///
/// ```
/// use treadmill_stats::p2::P2Quantile;
///
/// let mut p99 = P2Quantile::new(0.99);
/// for i in 1..=10_000 {
///     p99.record(f64::from(i));
/// }
/// let estimate = p99.estimate();
/// assert!((estimate - 9_900.0).abs() < 100.0, "estimate {estimate}");
/// ```
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    // Marker heights (estimates) and integer positions.
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

/// A [`P2Quantile`]'s full state, captured for checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct P2State {
    /// Target probability.
    pub p: f64,
    /// Marker heights.
    pub heights: [f64; 5],
    /// Marker positions.
    pub positions: [f64; 5],
    /// Desired marker positions.
    pub desired: [f64; 5],
    /// Per-sample desired-position increments.
    pub increments: [f64; 5],
    /// Samples observed.
    pub count: usize,
    /// Warm-up samples (fewer than five seen so far).
    pub initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile probability {p} outside (0, 1)");
        P2Quantile {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The target probability.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Number of samples observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(f64::total_cmp);
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }

        // Find the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for position in self.positions.iter_mut().skip(k + 1) {
            *position += 1.0;
        }
        for (desired, increment) in self.desired.iter_mut().zip(self.increments) {
            *desired += increment;
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                let new_height = if self.heights[i - 1] < candidate
                    && candidate < self.heights[i + 1]
                {
                    candidate
                } else {
                    self.linear(i, sign)
                };
                self.heights[i] = new_height;
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + sign / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + sign) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - sign) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = if sign > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i])
                / (self.positions[j] - self.positions[i])
    }

    /// Captures the full estimator state for checkpointing. Feeding the
    /// result to [`P2Quantile::from_state`] yields an estimator whose
    /// every subsequent [`P2Quantile::record`] and estimate is
    /// bit-identical to this one's.
    pub fn state(&self) -> P2State {
        P2State {
            p: self.p,
            heights: self.heights,
            positions: self.positions,
            desired: self.desired,
            increments: self.increments,
            count: self.count,
            initial: self.initial.clone(),
        }
    }

    /// Rebuilds an estimator from a checkpointed [`P2State`].
    ///
    /// # Panics
    ///
    /// Panics if the state is internally inconsistent (probability out
    /// of range or more than five warm-up samples).
    pub fn from_state(state: P2State) -> Self {
        assert!(
            state.p > 0.0 && state.p < 1.0,
            "quantile probability {} outside (0, 1)",
            state.p
        );
        assert!(state.initial.len() <= 5, "more than five warm-up samples");
        P2Quantile {
            p: state.p,
            heights: state.heights,
            positions: state.positions,
            desired: state.desired,
            increments: state.increments,
            count: state.count,
            initial: state.initial,
        }
    }

    /// The current quantile estimate.
    ///
    /// # Panics
    ///
    /// Panics if no samples have been recorded.
    pub fn estimate(&self) -> f64 {
        assert!(self.count > 0, "estimate of empty stream");
        if self.initial.len() < 5 {
            // Fewer than five samples: exact small-sample quantile.
            let mut sorted = self.initial.clone();
            sorted.sort_by(f64::total_cmp);
            return crate::quantile::quantile_of_sorted(&sorted, self.p);
        }
        self.heights[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::sample_exponential;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn median_of_uniform_stream() {
        let mut est = P2Quantile::new(0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100_000 {
            est.record(rng.gen_range(0.0..1000.0));
        }
        assert!((est.estimate() - 500.0).abs() < 15.0, "{}", est.estimate());
    }

    #[test]
    fn p99_of_exponential_stream() {
        // Exp(100): true p99 = 100 ln 100 ≈ 460.5.
        let mut est = P2Quantile::new(0.99);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200_000 {
            est.record(sample_exponential(&mut rng, 100.0));
        }
        let truth = 100.0 * 100.0f64.ln();
        assert!(
            (est.estimate() / truth - 1.0).abs() < 0.1,
            "estimate {} vs truth {truth}",
            est.estimate()
        );
    }

    #[test]
    fn small_samples_are_exact() {
        let mut est = P2Quantile::new(0.5);
        est.record(3.0);
        est.record(1.0);
        est.record(2.0);
        assert_eq!(est.estimate(), 2.0);
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn agrees_with_adaptive_histogram() {
        let mut p2 = P2Quantile::new(0.95);
        let mut hist = crate::AdaptiveHistogram::new();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100_000 {
            let v = 50.0 + sample_exponential(&mut rng, 30.0);
            p2.record(v);
            hist.record(v);
        }
        let a = p2.estimate();
        let b = hist.quantile(0.95);
        assert!((a / b - 1.0).abs() < 0.05, "p2 {a} vs histogram {b}");
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        // Snapshot mid-stream (after warm-up) and mid-warm-up; both
        // resumed estimators must track the original bit-for-bit.
        for cut in [3usize, 5_000] {
            let mut rng = SmallRng::seed_from_u64(9);
            let mut original = P2Quantile::new(0.95);
            for _ in 0..cut {
                original.record(sample_exponential(&mut rng, 50.0));
            }
            let mut resumed = P2Quantile::from_state(original.state());
            for _ in 0..5_000 {
                let v = sample_exponential(&mut rng, 50.0);
                original.record(v);
                resumed.record(v);
            }
            assert_eq!(
                original.estimate().to_bits(),
                resumed.estimate().to_bits(),
                "divergence after cut at {cut}"
            );
            assert_eq!(original.count(), resumed.count());
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn probability_bounds() {
        P2Quantile::new(1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_estimate_panics() {
        P2Quantile::new(0.5).estimate();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn estimate_within_observed_range(
            data in prop::collection::vec(0.0f64..1e6, 5..500),
            p in 0.05f64..0.95,
        ) {
            let mut est = P2Quantile::new(p);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in &data {
                est.record(v);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let q = est.estimate();
            prop_assert!(q >= lo - 1e-9 && q <= hi + 1e-9, "{q} outside [{lo}, {hi}]");
        }

        #[test]
        fn tracks_exact_quantile_of_large_uniform(
            seed in 0u64..100,
            p in 0.1f64..0.9,
        ) {
            let mut est = P2Quantile::new(p);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut all = Vec::with_capacity(20_000);
            for _ in 0..20_000 {
                let v: f64 = rng.gen_range(0.0..1.0);
                est.record(v);
                all.push(v);
            }
            let truth = crate::quantile::quantile(&all, p);
            prop_assert!((est.estimate() - truth).abs() < 0.05);
        }
    }
}
