//! Latency histograms: Treadmill's adaptive histogram and the static
//! histogram pitfall it replaces.
//!
//! Treadmill (§III-A) aggregates latency samples online in three phases:
//! warm-up samples are discarded by the load tester, a **calibration**
//! phase buffers raw samples to choose bin bounds, and the measurement
//! phase bins samples — **re-binning** (doubling the range) whenever too
//! many samples exceed the current upper bound. Prior load testers used
//! statically configured bins, which clip the tail once the server
//! approaches saturation (§II-B); [`StaticHistogram`] reproduces that
//! flaw for the comparison experiments.

use crate::quantile::quantile_of_sorted;

/// Configuration for an [`AdaptiveHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramConfig {
    /// Raw samples buffered before bin bounds are chosen.
    pub calibration_samples: usize,
    /// Number of equal-width bins between the calibrated bounds.
    pub bins: usize,
    /// Fraction of headroom added above the calibration maximum.
    pub upper_headroom: f64,
    /// Re-bin when the overflow bucket holds more than this fraction of
    /// all recorded samples.
    pub overflow_rebin_fraction: f64,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        HistogramConfig {
            calibration_samples: 2_000,
            bins: 1_024,
            upper_headroom: 1.0,
            overflow_rebin_fraction: 0.001,
        }
    }
}

/// Treadmill's adaptive latency histogram.
///
/// Values are arbitrary `f64`s (the library uses microseconds). Until
/// `calibration_samples` values arrive the histogram stores raw samples;
/// afterwards it bins, and re-bins by doubling the upper bound whenever
/// the overflow bucket exceeds `overflow_rebin_fraction` of the total.
/// Re-binning redistributes coarse bucket contents, so quantile estimates
/// stay accurate to bin resolution.
///
/// # Examples
///
/// ```
/// use treadmill_stats::AdaptiveHistogram;
///
/// let mut hist = AdaptiveHistogram::new();
/// for i in 0..10_000 {
///     hist.record(100.0 + (i % 100) as f64);
/// }
/// let p50 = hist.quantile(0.5);
/// assert!((p50 - 150.0).abs() < 5.0, "p50 = {p50}");
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveHistogram {
    config: HistogramConfig,
    calibration: Vec<f64>,
    // Set after calibration.
    lower: f64,
    upper: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    overflow_values: Vec<f64>,
    total: u64,
    sum: f64,
    max_seen: f64,
    min_seen: f64,
    rebins: u32,
    calibrated: bool,
}

impl Default for AdaptiveHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptiveHistogram {
    /// Creates a histogram with the default configuration.
    pub fn new() -> Self {
        Self::with_config(HistogramConfig::default())
    }

    /// Creates a histogram with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `calibration_samples` is zero.
    pub fn with_config(config: HistogramConfig) -> Self {
        assert!(config.bins > 0, "histogram needs at least one bin");
        assert!(
            config.calibration_samples > 0,
            "calibration needs at least one sample"
        );
        AdaptiveHistogram {
            calibration: Vec::with_capacity(config.calibration_samples),
            config,
            lower: 0.0,
            upper: 0.0,
            counts: Vec::new(),
            underflow: 0,
            overflow: 0,
            overflow_values: Vec::new(),
            total: 0,
            sum: 0.0,
            max_seen: f64::NEG_INFINITY,
            min_seen: f64::INFINITY,
            rebins: 0,
            calibrated: false,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "histogram sample must be finite");
        self.total += 1;
        self.sum += value;
        self.max_seen = self.max_seen.max(value);
        self.min_seen = self.min_seen.min(value);
        if !self.calibrated {
            self.calibration.push(value);
            if self.calibration.len() >= self.config.calibration_samples {
                self.calibrate();
            }
            return;
        }
        self.bin_sample(value);
        if self.overflow as f64
            > self.config.overflow_rebin_fraction * self.total as f64
        {
            self.rebin();
        }
    }

    fn calibrate(&mut self) {
        let mut sorted = std::mem::take(&mut self.calibration);
        sorted.sort_by(f64::total_cmp);
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        let span = (hi - lo).max(f64::EPSILON);
        self.lower = lo;
        self.upper = hi + span * self.config.upper_headroom;
        self.counts = vec![0; self.config.bins];
        self.calibrated = true;
        for value in sorted {
            self.bin_sample(value);
        }
    }

    // Bin indices truncate toward zero on purpose and are clamped to
    // the last bin right after the cast.
    #[allow(clippy::cast_possible_truncation)]
    fn bin_sample(&mut self, value: f64) {
        if value < self.lower {
            self.underflow += 1;
            return;
        }
        if value >= self.upper {
            self.overflow += 1;
            self.overflow_values.push(value);
            return;
        }
        let width = (self.upper - self.lower) / self.counts.len() as f64;
        let idx = (((value - self.lower) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Doubles the bin range and redistributes existing mass.
    // Redistribution indices truncate and clamp like bin_sample's.
    #[allow(clippy::cast_possible_truncation)]
    fn rebin(&mut self) {
        let old_counts = std::mem::take(&mut self.counts);
        let old_lower = self.lower;
        let old_width = (self.upper - old_lower) / old_counts.len() as f64;
        self.upper = old_lower + (self.upper - old_lower) * 2.0;
        self.counts = vec![0; old_counts.len()];
        let new_width = (self.upper - self.lower) / self.counts.len() as f64;
        for (i, count) in old_counts.into_iter().enumerate() {
            if count == 0 {
                continue;
            }
            let center = old_lower + (i as f64 + 0.5) * old_width;
            let idx =
                (((center - self.lower) / new_width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += count;
        }
        let pending = std::mem::take(&mut self.overflow_values);
        self.overflow = 0;
        for value in pending {
            self.bin_sample(value);
        }
        self.rebins += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of all recorded samples (exact, not binned).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest sample seen, or `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// Smallest sample seen, or `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.min_seen
    }

    /// How many times the histogram re-binned.
    pub fn rebins(&self) -> u32 {
        self.rebins
    }

    /// True if calibration has completed and samples are being binned.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Estimates the `p`-quantile.
    ///
    /// During calibration this is the exact sample quantile; afterwards it
    /// interpolates within bins.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(self.total > 0, "quantile of empty histogram");
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        if !self.calibrated {
            let mut sorted = self.calibration.clone();
            sorted.sort_by(f64::total_cmp);
            return quantile_of_sorted(&sorted, p);
        }
        let target = p * self.total as f64;
        let mut cumulative = self.underflow as f64;
        if cumulative >= target && self.underflow > 0 {
            return self.lower;
        }
        let width = (self.upper - self.lower) / self.counts.len() as f64;
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let next = cumulative + count as f64;
            if next >= target {
                let into = ((target - cumulative) / count as f64).clamp(0.0, 1.0);
                return self.lower + (i as f64 + into) * width;
            }
            cumulative = next;
        }
        // Target falls in the overflow bucket: use the exact retained
        // overflow values.
        if !self.overflow_values.is_empty() {
            let mut sorted = self.overflow_values.clone();
            sorted.sort_by(f64::total_cmp);
            let remaining = ((target - cumulative) / self.overflow as f64).clamp(0.0, 1.0);
            return quantile_of_sorted(&sorted, remaining);
        }
        self.max_seen
    }

    /// Returns `(bin_upper_edge, cumulative_fraction)` pairs describing
    /// the empirical CDF, suitable for plotting Figures 5–6.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        if !self.calibrated {
            let mut sorted = self.calibration.clone();
            sorted.sort_by(f64::total_cmp);
            let n = sorted.len() as f64;
            return sorted
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, (i + 1) as f64 / n))
                .collect();
        }
        let mut points = Vec::with_capacity(self.counts.len() + 1);
        let width = (self.upper - self.lower) / self.counts.len() as f64;
        let mut cumulative = self.underflow;
        for (i, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if count > 0 {
                points.push((
                    self.lower + (i as f64 + 1.0) * width,
                    cumulative as f64 / self.total as f64,
                ));
            }
        }
        if self.overflow > 0 {
            points.push((self.max_seen, 1.0));
        }
        points
    }

    /// Merges another histogram's samples into this one.
    ///
    /// This is the **holistic** aggregation the paper warns against for
    /// cross-client metrics (§II-B, Fig. 2); it exists so the bias can be
    /// demonstrated, and for intra-client shard merging where it is
    /// legitimate.
    pub fn merge(&mut self, other: &AdaptiveHistogram) {
        if !other.calibrated {
            for &v in &other.calibration {
                self.record(v);
            }
            return;
        }
        let width = (other.upper - other.lower) / other.counts.len() as f64;
        for (i, &count) in other.counts.iter().enumerate() {
            let center = other.lower + (i as f64 + 0.5) * width;
            for _ in 0..count {
                self.record(center);
            }
        }
        for &v in &other.overflow_values {
            self.record(v);
        }
        for _ in 0..other.underflow {
            self.record(other.lower);
        }
    }
}

/// A histogram with **statically configured** bounds — the pitfall design
/// (§II-B).
///
/// Samples above the fixed upper bound are clamped into the last bin,
/// which silently truncates the tail once the server nears saturation.
///
/// # Examples
///
/// ```
/// use treadmill_stats::StaticHistogram;
///
/// let mut hist = StaticHistogram::new(0.0, 100.0, 100);
/// hist.record(5_000.0); // clipped!
/// assert!(hist.quantile(0.99) <= 100.0);
/// assert_eq!(hist.clipped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct StaticHistogram {
    lower: f64,
    upper: f64,
    counts: Vec<u64>,
    total: u64,
    clipped: u64,
}

impl StaticHistogram {
    /// Creates a histogram over `[lower, upper)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `upper <= lower` or `bins == 0`.
    pub fn new(lower: f64, upper: f64, bins: usize) -> Self {
        assert!(upper > lower, "upper bound must exceed lower bound");
        assert!(bins > 0, "histogram needs at least one bin");
        StaticHistogram {
            lower,
            upper,
            counts: vec![0; bins],
            total: 0,
            clipped: 0,
        }
    }

    /// Records one sample, clamping out-of-range values into the edge
    /// bins (the flaw under study).
    // In-range bin indices truncate and clamp deliberately.
    #[allow(clippy::cast_possible_truncation)]
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        let width = (self.upper - self.lower) / self.counts.len() as f64;
        let idx = if value < self.lower {
            self.clipped += 1;
            0
        } else if value >= self.upper {
            self.clipped += 1;
            self.counts.len() - 1
        } else {
            (((value - self.lower) / width) as usize).min(self.counts.len() - 1)
        };
        self.counts[idx] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of samples that fell outside the configured range.
    pub fn clipped(&self) -> u64 {
        self.clipped
    }

    /// Estimates the `p`-quantile from the (possibly clipped) bins.
    ///
    /// # Panics
    ///
    /// Panics if empty or `p` outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(self.total > 0, "quantile of empty histogram");
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let target = p * self.total as f64;
        let width = (self.upper - self.lower) / self.counts.len() as f64;
        let mut cumulative = 0.0;
        for (i, &count) in self.counts.iter().enumerate() {
            let next = cumulative + count as f64;
            if next >= target && count > 0 {
                let into = ((target - cumulative) / count as f64).clamp(0.0, 1.0);
                return self.lower + (i as f64 + into) * width;
            }
            cumulative = next;
        }
        self.upper
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn uniform_samples(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(lo..hi)).collect()
    }

    #[test]
    fn quantiles_track_exact_values() {
        let samples = uniform_samples(100_000, 100.0, 200.0, 1);
        let mut hist = AdaptiveHistogram::new();
        let mut exact = samples.clone();
        for v in &samples {
            hist.record(*v);
        }
        exact.sort_by(f64::total_cmp);
        for &p in &[0.5, 0.9, 0.99, 0.999] {
            let approx = hist.quantile(p);
            let truth = quantile_of_sorted(&exact, p);
            assert!(
                (approx - truth).abs() < 1.0,
                "p={p}: approx {approx} vs truth {truth}"
            );
        }
    }

    #[test]
    fn precalibration_quantiles_are_exact() {
        let mut hist = AdaptiveHistogram::with_config(HistogramConfig {
            calibration_samples: 1_000,
            ..Default::default()
        });
        for i in 0..100 {
            hist.record(i as f64);
        }
        assert!(!hist.is_calibrated());
        assert!((hist.quantile(0.5) - 49.5).abs() < 1e-9);
    }

    #[test]
    fn rebinning_extends_the_range() {
        let mut hist = AdaptiveHistogram::with_config(HistogramConfig {
            calibration_samples: 100,
            bins: 64,
            upper_headroom: 0.1,
            overflow_rebin_fraction: 0.01,
        });
        // Calibrate low, then shift the distribution up 10x — the exact
        // failure mode of static bins under rising utilisation.
        for i in 0..100 {
            hist.record(100.0 + (i % 10) as f64);
        }
        for i in 0..10_000 {
            hist.record(1_000.0 + (i % 100) as f64);
        }
        assert!(hist.rebins() > 0, "expected at least one rebin");
        let p90 = hist.quantile(0.9);
        assert!(p90 > 900.0, "p90 {p90} should reflect the shifted mass");
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut hist = AdaptiveHistogram::new();
        for v in [1.0, 2.0, 3.0, 10.0] {
            hist.record(v);
        }
        assert_eq!(hist.mean(), 4.0);
        assert_eq!(hist.min(), 1.0);
        assert_eq!(hist.max(), 10.0);
        assert_eq!(hist.count(), 4);
    }

    #[test]
    fn cdf_points_are_monotone_and_end_at_one() {
        let samples = uniform_samples(50_000, 0.0, 500.0, 2);
        let mut hist = AdaptiveHistogram::new();
        for v in samples {
            hist.record(v);
        }
        let points = hist.cdf_points();
        assert!(!points.is_empty());
        for pair in points.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 <= pair[1].1 + 1e-12);
        }
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_approximates_combined_distribution() {
        let a = uniform_samples(20_000, 0.0, 100.0, 3);
        let b = uniform_samples(20_000, 100.0, 200.0, 4);
        let mut ha = AdaptiveHistogram::new();
        let mut hb = AdaptiveHistogram::new();
        for v in &a {
            ha.record(*v);
        }
        for v in &b {
            hb.record(*v);
        }
        ha.merge(&hb);
        assert_eq!(ha.count(), 40_000);
        let p50 = ha.quantile(0.5);
        assert!((p50 - 100.0).abs() < 5.0, "merged p50 {p50}");
    }

    #[test]
    fn static_histogram_clips_the_tail() {
        let mut hist = StaticHistogram::new(0.0, 100.0, 100);
        for _ in 0..1_000 {
            hist.record(50.0);
        }
        for _ in 0..100 {
            hist.record(10_000.0);
        }
        // True p99.9 is 10_000; the static histogram cannot see past 100.
        assert!(hist.quantile(0.999) <= 100.0);
        assert_eq!(hist.clipped(), 100);
    }

    #[test]
    fn static_histogram_is_accurate_in_range() {
        let mut hist = StaticHistogram::new(0.0, 1_000.0, 1_000);
        let samples = uniform_samples(100_000, 0.0, 1_000.0, 5);
        let mut exact = samples.clone();
        for v in &samples {
            hist.record(*v);
        }
        exact.sort_by(f64::total_cmp);
        let approx = hist.quantile(0.95);
        let truth = quantile_of_sorted(&exact, 0.95);
        assert!((approx - truth).abs() < 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_quantile_panics() {
        AdaptiveHistogram::new().quantile(0.5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn adaptive_quantile_is_monotone(
            data in prop::collection::vec(0.0f64..1e5, 100..2_000),
            p1 in 0.0f64..1.0,
            p2 in 0.0f64..1.0,
        ) {
            let mut hist = AdaptiveHistogram::with_config(HistogramConfig {
                calibration_samples: 50,
                bins: 128,
                ..Default::default()
            });
            for v in &data {
                hist.record(*v);
            }
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(hist.quantile(lo) <= hist.quantile(hi) + 1e-9);
        }

        #[test]
        fn adaptive_quantile_within_observed_range(
            data in prop::collection::vec(0.0f64..1e5, 100..2_000),
            p in 0.0f64..=1.0,
        ) {
            let mut hist = AdaptiveHistogram::with_config(HistogramConfig {
                calibration_samples: 50,
                bins: 128,
                ..Default::default()
            });
            for v in &data {
                hist.record(*v);
            }
            let q = hist.quantile(p);
            prop_assert!(q >= hist.min() - 1e-9);
            // Binned estimates may land at a bin edge slightly above max.
            let width = 1e5 / 128.0 * 4.0;
            prop_assert!(q <= hist.max() + width);
        }

        #[test]
        fn count_is_total_records(data in prop::collection::vec(0.0f64..1e4, 0..500)) {
            let mut hist = AdaptiveHistogram::with_config(HistogramConfig {
                calibration_samples: 10,
                bins: 32,
                ..Default::default()
            });
            for v in &data {
                hist.record(*v);
            }
            prop_assert_eq!(hist.count(), data.len() as u64);
        }
    }
}
