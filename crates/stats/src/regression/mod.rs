//! Quantile regression and supporting inference (paper §IV).
//!
//! The paper attributes tail-latency variance to hardware factors with
//! quantile regression over a 2-level full-factorial design including all
//! interaction terms (Eq. 1). This module provides:
//!
//! * [`FactorialDesign`] — term construction and design matrices,
//! * [`fit`] — the pinball (check) loss and the paper's pseudo-R² (Eq. 2),
//! * [`irls`] — a smoothed iteratively-reweighted-least-squares solver
//!   for general designs,
//! * [`simplex`] — an exact LP solver used as a small-problem oracle,
//! * [`saturated`] — the exact solver for saturated factorial designs
//!   (the paper's setting), going through per-cell empirical quantiles,
//! * [`bootstrap`] — run-level (cluster) bootstrap standard errors and
//!   p-values for the coefficient table (Table IV),
//! * [`ols`] — ordinary least squares / ANOVA for the comparison the
//!   paper draws with mean-based attribution.

pub mod anova;
pub mod bootstrap;
pub mod design;
pub mod fit;
pub mod irls;
pub mod ols;
pub mod saturated;
pub mod simplex;

pub use anova::{anova, AnovaRow, AnovaTable};
pub use bootstrap::{bootstrap_saturated, BootstrapOptions, CoefficientEstimate};
pub use design::FactorialDesign;
pub use fit::{check_weight, pinball_loss, pseudo_r_squared, total_pinball_loss};
pub use irls::{quantile_regression_irls, IrlsOptions};
pub use ols::{ols_fit, OlsFit};
pub use saturated::{experiment_quantile_fit, per_run_quantiles, saturated_quantile_fit, Cell};
pub use simplex::quantile_regression_exact;
