//! Smoothed iteratively-reweighted-least-squares quantile regression.
//!
//! Follows Schlossmacher's IRLS scheme adapted to the asymmetric check
//! loss: each iteration solves a weighted least-squares problem with
//! weights `w_i = check_weight(τ, r_i) / max(|r_i|, ε)`. The ε floor is
//! the smoothing that keeps weights bounded; as ε → 0 the fixed point
//! approaches the exact quantile-regression solution.
//!
//! The paper perturbs its (all-dummy) regressors with 0.01-σ noise to
//! keep the optimiser out of degenerate corners (§V-A); callers can do
//! the same via [`IrlsOptions::jitter`].

use crate::linalg::{Matrix, SolveError};
use crate::regression::fit::check_weight;
use rand::Rng;

/// Options for [`quantile_regression_irls`].
#[derive(Debug, Clone, PartialEq)]
pub struct IrlsOptions {
    /// Maximum IRLS iterations.
    pub max_iterations: usize,
    /// Stop when the max coefficient change falls below this.
    pub tolerance: f64,
    /// Residual smoothing floor (ε).
    pub epsilon: f64,
    /// Standard deviation of optional response jitter (0 disables); the
    /// paper uses 0.01 standard deviations of symmetric perturbation.
    pub jitter: f64,
}

impl Default for IrlsOptions {
    fn default() -> Self {
        IrlsOptions {
            max_iterations: 200,
            tolerance: 1e-8,
            epsilon: 1e-6,
            jitter: 0.0,
        }
    }
}

/// Fits quantile-regression coefficients by smoothed IRLS.
///
/// # Errors
///
/// Returns [`SolveError`] if a weighted least-squares step encounters a
/// singular system (e.g. collinear design columns).
///
/// # Panics
///
/// Panics if `tau` is outside `(0, 1)` or `y.len()` differs from the
/// design row count.
///
/// # Examples
///
/// ```
/// use treadmill_stats::linalg::Matrix;
/// use treadmill_stats::regression::{quantile_regression_irls, IrlsOptions};
///
/// // y = 10 + 2x, exactly. Any quantile line equals the data line.
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let mut design = Matrix::zeros(4, 2);
/// let mut y = Vec::new();
/// for (i, &x) in xs.iter().enumerate() {
///     design[(i, 0)] = 1.0;
///     design[(i, 1)] = x;
///     y.push(10.0 + 2.0 * x);
/// }
/// let beta = quantile_regression_irls(&design, &y, 0.9, &IrlsOptions::default())?;
/// assert!((beta[0] - 10.0).abs() < 1e-3);
/// assert!((beta[1] - 2.0).abs() < 1e-3);
/// # Ok::<(), treadmill_stats::linalg::SolveError>(())
/// ```
pub fn quantile_regression_irls(
    design: &Matrix,
    y: &[f64],
    tau: f64,
    options: &IrlsOptions,
) -> Result<Vec<f64>, SolveError> {
    assert!(tau > 0.0 && tau < 1.0, "quantile level {tau} outside (0, 1)");
    assert_eq!(y.len(), design.rows(), "response length mismatch");
    let n = design.rows();
    let p = design.cols();

    let y = if options.jitter > 0.0 {
        let sd = jitter_scale(y) * options.jitter;
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(0x7A17_7E12);
        y.iter()
            .map(|&v| v + (rng.gen::<f64>() - 0.5) * 2.0 * sd)
            .collect()
    } else {
        y.to_vec()
    };

    // Start from the least-squares fit.
    let mut beta = design.solve_least_squares(&y)?;
    for _ in 0..options.max_iterations {
        let fitted = design.mul_vec(&beta);
        // Weighted least squares: scale each row and response by sqrt(w).
        let mut scaled = Matrix::zeros(n, p);
        let mut scaled_y = vec![0.0; n];
        for i in 0..n {
            let r = y[i] - fitted[i];
            let w = check_weight(tau, r) / r.abs().max(options.epsilon);
            let sw = w.sqrt();
            for j in 0..p {
                scaled[(i, j)] = design[(i, j)] * sw;
            }
            scaled_y[i] = y[i] * sw;
        }
        let next = scaled.solve_least_squares(&scaled_y)?;
        let delta = beta
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        beta = next;
        if delta < options.tolerance {
            break;
        }
    }
    Ok(beta)
}

fn jitter_scale(y: &[f64]) -> f64 {
    if y.len() < 2 {
        return 0.0;
    }
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let var = y.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / (y.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::sample_exponential;
    use crate::regression::fit::total_pinball_loss;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn line_design(xs: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(xs.len(), 2);
        for (i, &x) in xs.iter().enumerate() {
            m[(i, 0)] = 1.0;
            m[(i, 1)] = x;
        }
        m
    }

    #[test]
    fn median_regression_of_symmetric_noise_recovers_line() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 4_000;
        let xs: Vec<f64> = (0..n).map(|i| (i % 100) as f64 / 10.0).collect();
        let design = line_design(&xs);
        let y: Vec<f64> = xs
            .iter()
            .map(|&x| {
                5.0 + 1.5 * x
                    + crate::distribution::sample_standard_normal(&mut rng) * 2.0
            })
            .collect();
        let beta =
            quantile_regression_irls(&design, &y, 0.5, &IrlsOptions::default()).unwrap();
        assert!((beta[0] - 5.0).abs() < 0.25, "intercept {}", beta[0]);
        assert!((beta[1] - 1.5).abs() < 0.05, "slope {}", beta[1]);
    }

    #[test]
    fn upper_quantile_sits_above_median() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 4_000;
        let xs: Vec<f64> = (0..n).map(|i| (i % 50) as f64).collect();
        let design = line_design(&xs);
        let y: Vec<f64> = xs
            .iter()
            .map(|&x| 10.0 + x + sample_exponential(&mut rng, 5.0))
            .collect();
        let b50 =
            quantile_regression_irls(&design, &y, 0.5, &IrlsOptions::default()).unwrap();
        let b95 =
            quantile_regression_irls(&design, &y, 0.95, &IrlsOptions::default()).unwrap();
        // Exponential noise: q50 offset = 5 ln 2 ≈ 3.47, q95 = 5 ln 20 ≈ 14.98.
        assert!(b95[0] > b50[0] + 5.0, "p95 intercept {} vs p50 {}", b95[0], b50[0]);
        // Slopes should both be ≈ 1 (noise independent of x).
        assert!((b50[1] - 1.0).abs() < 0.05);
        assert!((b95[1] - 1.0).abs() < 0.2);
    }

    #[test]
    fn irls_loss_close_to_exhaustive_optimum() {
        // Intercept-only model: exact optimum is the empirical quantile.
        let mut rng = SmallRng::seed_from_u64(3);
        let y: Vec<f64> = (0..2_001).map(|_| sample_exponential(&mut rng, 7.0)).collect();
        let design = {
            let mut m = Matrix::zeros(y.len(), 1);
            for i in 0..y.len() {
                m[(i, 0)] = 1.0;
            }
            m
        };
        let tau = 0.9;
        let beta = quantile_regression_irls(&design, &y, tau, &IrlsOptions::default())
            .unwrap();
        let exact = crate::quantile::quantile(&y, tau);
        let irls_loss = total_pinball_loss(tau, &y, &vec![beta[0]; y.len()]);
        let exact_loss = total_pinball_loss(tau, &y, &vec![exact; y.len()]);
        assert!(
            irls_loss <= exact_loss * 1.01,
            "IRLS loss {irls_loss} vs exact {exact_loss}"
        );
    }

    #[test]
    fn jitter_does_not_move_solution_materially() {
        let xs: Vec<f64> = (0..500).map(|i| (i % 10) as f64).collect();
        let design = line_design(&xs);
        let y: Vec<f64> = xs.iter().map(|&x| 3.0 + 2.0 * x).collect();
        let clean =
            quantile_regression_irls(&design, &y, 0.5, &IrlsOptions::default()).unwrap();
        let jittered = quantile_regression_irls(
            &design,
            &y,
            0.5,
            &IrlsOptions {
                jitter: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((clean[0] - jittered[0]).abs() < 0.5);
        assert!((clean[1] - jittered[1]).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn tau_bounds_checked() {
        let design = Matrix::identity(2);
        let _ = quantile_regression_irls(&design, &[1.0, 2.0], 1.0, &IrlsOptions::default());
    }
}
