//! Exact quantile regression for saturated factorial designs.
//!
//! The paper's model is saturated: 4 factors, all interactions, 16
//! coefficients — exactly as many as there are factor-level cells. In a
//! saturated design the conditional τ-quantile of each cell is fitted
//! exactly, so the regression reduces to (1) the empirical τ-quantile of
//! the samples pooled within each cell and (2) a 16×16 linear solve that
//! maps cell quantiles to term coefficients. This is both exact and
//! orders of magnitude faster than running an LP over millions of
//! samples.

use crate::linalg::SolveError;
use crate::quantile::quantile_of_sorted;
use crate::regression::design::FactorialDesign;

/// The measurements collected in one factorial cell: one or more
/// experiment runs, each contributing a vector of latency samples.
///
/// Keeping runs separate (rather than pre-pooling) is what lets the
/// bootstrap capture between-run variance — the paper's performance
/// hysteresis (§II-D).
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Factor levels for this cell, coded 0.0 / 1.0, one per factor.
    pub levels: Vec<f64>,
    /// Latency samples grouped by experiment run. Each inner vector is
    /// kept **sorted ascending** by [`Cell::new`].
    runs: Vec<Vec<f64>>,
    total: usize,
}

impl Cell {
    /// Creates a cell, sorting each run's samples.
    ///
    /// # Panics
    ///
    /// Panics if there are no runs or any run is empty.
    pub fn new(levels: Vec<f64>, mut runs: Vec<Vec<f64>>) -> Self {
        assert!(!runs.is_empty(), "cell needs at least one run");
        let mut total = 0;
        for run in &mut runs {
            assert!(!run.is_empty(), "cell run with no samples");
            run.sort_by(f64::total_cmp);
            total += run.len();
        }
        Cell { levels, runs, total }
    }

    /// Number of runs in the cell.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Total samples across runs.
    pub fn total_samples(&self) -> usize {
        self.total
    }

    /// The sorted sample vectors, one per run.
    pub fn runs(&self) -> &[Vec<f64>] {
        &self.runs
    }

    /// The τ-quantile of all samples pooled across runs.
    pub fn pooled_quantile(&self, tau: f64) -> f64 {
        self.mixture_quantile(tau, &vec![1usize; self.runs.len()])
    }

    /// The τ-quantile of the mixture where run `i` is weighted by
    /// `multiplicity[i]` (used by the run-level bootstrap). Computed by
    /// bisection on the mixture CDF over the per-run sorted arrays.
    ///
    /// # Panics
    ///
    /// Panics if `multiplicity.len()` differs from the number of runs or
    /// all multiplicities are zero.
    pub fn mixture_quantile(&self, tau: f64, multiplicity: &[usize]) -> f64 {
        assert_eq!(multiplicity.len(), self.runs.len(), "multiplicity length");
        let total: usize = self
            .runs
            .iter()
            .zip(multiplicity)
            .map(|(run, &m)| run.len() * m)
            .sum();
        assert!(total > 0, "mixture with zero total weight");
        let target = tau * total as f64;

        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (run, &m) in self.runs.iter().zip(multiplicity) {
            if m == 0 {
                continue;
            }
            lo = lo.min(run[0]);
            hi = hi.max(run[run.len() - 1]);
        }
        if lo >= hi {
            return lo;
        }
        // Count of samples <= x in the weighted mixture.
        let count_le = |x: f64| -> f64 {
            self.runs
                .iter()
                .zip(multiplicity)
                .map(|(run, &m)| (run.partition_point(|&v| v <= x) * m) as f64)
                .sum()
        };
        // Bisection to ~1e-9 relative width.
        let mut a = lo;
        let mut b = hi;
        for _ in 0..80 {
            let mid = 0.5 * (a + b);
            if count_le(mid) >= target {
                b = mid;
            } else {
                a = mid;
            }
            if (b - a) <= 1e-9 * hi.abs().max(1.0) {
                break;
            }
        }
        b
    }
}

/// Fits the saturated quantile-regression model: returns one coefficient
/// per design term, ordered as [`FactorialDesign::term_labels`].
///
/// # Errors
///
/// Returns [`SolveError`] if the design system is singular (duplicate or
/// missing cells) or cells don't cover every configuration.
///
/// # Panics
///
/// Panics if `tau` is outside `(0, 1)` or the design is not saturated
/// (`num_terms != number of cells`).
///
/// # Examples
///
/// ```
/// use treadmill_stats::regression::{saturated_quantile_fit, Cell, FactorialDesign};
///
/// let design = FactorialDesign::full(&["f"]);
/// let cells = vec![
///     Cell::new(vec![0.0], vec![vec![10.0, 11.0, 12.0]]),
///     Cell::new(vec![1.0], vec![vec![20.0, 21.0, 22.0]]),
/// ];
/// let beta = saturated_quantile_fit(&design, &cells, 0.5)?;
/// assert!((beta[0] - 11.0).abs() < 1e-6); // intercept = low-level median
/// assert!((beta[1] - 10.0).abs() < 1e-6); // effect of f = +10
/// # Ok::<(), treadmill_stats::linalg::SolveError>(())
/// ```
pub fn saturated_quantile_fit(
    design: &FactorialDesign,
    cells: &[Cell],
    tau: f64,
) -> Result<Vec<f64>, SolveError> {
    assert!(tau > 0.0 && tau < 1.0, "quantile level {tau} outside (0, 1)");
    assert_eq!(
        design.num_terms(),
        cells.len(),
        "saturated fit needs exactly one cell per design term"
    );
    let configs: Vec<Vec<f64>> = cells.iter().map(|c| c.levels.clone()).collect();
    let matrix = design.design_matrix(&configs);
    let rhs: Vec<f64> = cells.iter().map(|c| c.pooled_quantile(tau)).collect();
    matrix.solve(&rhs)
}

/// Convenience: the per-run τ-quantiles of a cell (used for hysteresis
/// diagnostics and run-level spread reporting).
pub fn per_run_quantiles(cell: &Cell, tau: f64) -> Vec<f64> {
    cell.runs()
        .iter()
        .map(|run| quantile_of_sorted(run, tau))
        .collect()
}

/// Fits the saturated model on **per-experiment quantile estimates**,
/// the paper's formulation: Eq. 3 defines the prediction error against
/// "the empirically measured quantile y_i^τ" of each experiment, so
/// each of the N = 16 × runs experiments contributes one observation —
/// its measured τ-quantile — and the fitted cell value is the
/// τ-quantile-regression solution over those observations (for a
/// saturated design, the τ-quantile of the cell's per-run quantiles).
///
/// # Errors
///
/// Returns [`SolveError`] if the design system is singular.
///
/// # Panics
///
/// Panics if `tau` is outside `(0, 1)` or the design is not saturated.
pub fn experiment_quantile_fit(
    design: &FactorialDesign,
    cells: &[Cell],
    tau: f64,
) -> Result<Vec<f64>, SolveError> {
    assert!(tau > 0.0 && tau < 1.0, "quantile level {tau} outside (0, 1)");
    assert_eq!(
        design.num_terms(),
        cells.len(),
        "saturated fit needs exactly one cell per design term"
    );
    let configs: Vec<Vec<f64>> = cells.iter().map(|c| c.levels.clone()).collect();
    let matrix = design.design_matrix(&configs);
    let rhs: Vec<f64> = cells
        .iter()
        .map(|cell| {
            let mut qs = per_run_quantiles(cell, tau);
            qs.sort_by(f64::total_cmp);
            quantile_of_sorted(&qs, tau)
        })
        .collect();
    matrix.solve(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::quantile_regression_exact;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn make_cells(design: &FactorialDesign, f: impl Fn(&[f64]) -> f64) -> Vec<Cell> {
        design
            .all_configurations()
            .into_iter()
            .map(|levels| {
                let center = f(&levels);
                let samples: Vec<f64> =
                    (0..101).map(|i| center + (i as f64 - 50.0) / 50.0).collect();
                Cell::new(levels, vec![samples])
            })
            .collect()
    }

    #[test]
    fn recovers_additive_effects() {
        let design = FactorialDesign::full(&["a", "b"]);
        let cells = make_cells(&design, |lv| 100.0 + 10.0 * lv[0] - 5.0 * lv[1]);
        let beta = saturated_quantile_fit(&design, &cells, 0.5).unwrap();
        assert!((beta[0] - 100.0).abs() < 1e-6);
        assert!((beta[1] - 10.0).abs() < 1e-6);
        assert!((beta[2] + 5.0).abs() < 1e-6);
        assert!(beta[3].abs() < 1e-6, "no interaction term expected");
    }

    #[test]
    fn recovers_interaction() {
        let design = FactorialDesign::full(&["a", "b"]);
        let cells = make_cells(&design, |lv| 50.0 + 20.0 * lv[0] * lv[1]);
        let beta = saturated_quantile_fit(&design, &cells, 0.5).unwrap();
        assert!(beta[1].abs() < 1e-6);
        assert!(beta[2].abs() < 1e-6);
        assert!((beta[3] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn predictions_interpolate_cell_quantiles() {
        let design = FactorialDesign::full(&["a", "b", "c", "d"]);
        let mut rng = SmallRng::seed_from_u64(10);
        let cells: Vec<Cell> = design
            .all_configurations()
            .into_iter()
            .map(|levels| {
                let samples: Vec<f64> =
                    (0..500).map(|_| rng.gen_range(0.0..100.0)).collect();
                Cell::new(levels, vec![samples])
            })
            .collect();
        for &tau in &[0.5, 0.95, 0.99] {
            let beta = saturated_quantile_fit(&design, &cells, tau).unwrap();
            for cell in &cells {
                let pred = design.predict(&beta, &cell.levels);
                let truth = cell.pooled_quantile(tau);
                assert!(
                    (pred - truth).abs() < 1e-6,
                    "tau {tau}: pred {pred} vs cell quantile {truth}"
                );
            }
        }
    }

    #[test]
    fn matches_lp_oracle() {
        // Saturated solver must agree with the exact LP run on the raw
        // samples.
        let design = FactorialDesign::full(&["a", "b"]);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let cells: Vec<Cell> = design
            .all_configurations()
            .into_iter()
            .map(|levels| {
                let samples: Vec<f64> = (0..51)
                    .map(|_| 10.0 * (1.0 + levels[0]) + rng.gen_range(0.0..5.0))
                    .collect();
                for s in &samples {
                    rows.push(levels.clone());
                    y.push(*s);
                }
                Cell::new(levels, vec![samples])
            })
            .collect();
        let matrix = design.design_matrix(&rows);
        let tau = 0.75;
        let lp = quantile_regression_exact(&matrix, &y, tau).unwrap();
        let sat = saturated_quantile_fit(&design, &cells, tau).unwrap();
        // Both minimise the same loss; cell quantile interpolation may
        // pick a different optimum within the flat region, so compare
        // predictions (which are pinned by the data) rather than raw
        // coefficients, allowing one-sample slack in each cell.
        for cell in &cells {
            let a = design.predict(&lp, &cell.levels);
            let b = design.predict(&sat, &cell.levels);
            assert!((a - b).abs() < 0.6, "{a} vs {b}");
        }
    }

    #[test]
    fn mixture_quantile_with_multiplicities() {
        let cell = Cell::new(
            vec![0.0],
            vec![vec![1.0, 2.0, 3.0], vec![10.0, 11.0, 12.0]],
        );
        // Equal weights: median sits between the two runs.
        let even = cell.mixture_quantile(0.5, &[1, 1]);
        assert!((3.0..=10.0).contains(&even), "median {even}");
        // Heavily weight the second run: median moves into it.
        let skewed = cell.mixture_quantile(0.5, &[1, 10]);
        assert!(skewed >= 10.0, "median {skewed}");
        // Zero out the second run entirely.
        let only_first = cell.mixture_quantile(0.99, &[1, 0]);
        assert!(only_first <= 3.0 + 1e-6);
    }

    #[test]
    fn pooled_quantile_matches_direct_computation() {
        let mut rng = SmallRng::seed_from_u64(12);
        let runs: Vec<Vec<f64>> = (0..5)
            .map(|_| (0..200).map(|_| rng.gen_range(0.0..100.0)).collect())
            .collect();
        let mut pooled: Vec<f64> = runs.iter().flatten().copied().collect();
        pooled.sort_by(f64::total_cmp);
        let cell = Cell::new(vec![0.0], runs);
        for &tau in &[0.5, 0.9, 0.99] {
            let direct = quantile_of_sorted(&pooled, tau);
            let mixture = cell.pooled_quantile(tau);
            // Bisection returns the smallest x with CDF >= tau; the
            // interpolated estimator can differ by up to one gap.
            assert!(
                (direct - mixture).abs() < 2.0,
                "tau {tau}: {direct} vs {mixture}"
            );
        }
    }

    #[test]
    fn per_run_quantiles_expose_hysteresis() {
        let cell = Cell::new(
            vec![0.0],
            vec![vec![1.0, 2.0, 3.0], vec![101.0, 102.0, 103.0]],
        );
        let q = per_run_quantiles(&cell, 0.5);
        assert_eq!(q, vec![2.0, 102.0]);
    }

    #[test]
    #[should_panic(expected = "one cell per design term")]
    fn saturation_checked() {
        let design = FactorialDesign::full(&["a", "b"]);
        let cells = vec![Cell::new(vec![0.0, 0.0], vec![vec![1.0]])];
        let _ = saturated_quantile_fit(&design, &cells, 0.5);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_run_rejected() {
        let _ = Cell::new(vec![0.0], vec![vec![]]);
    }
}
