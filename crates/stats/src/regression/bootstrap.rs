//! Run-level (cluster) bootstrap inference for saturated quantile
//! regression: standard errors and p-values for Table IV.
//!
//! Following the paper's Eq. 3, each experiment contributes one
//! observation — its measured τ-quantile — so the uncertainty that
//! matters is **between-run** (hysteresis) variation. Each bootstrap
//! replicate draws runs with replacement within every cell, recomputes
//! the cell's τ-quantile of per-run quantile estimates, and re-solves
//! the saturated system. The standard error of each coefficient is the
//! standard deviation across replicates, and the p-value is a two-sided
//! normal test of `estimate / std_error`.

use rand::Rng;

use crate::distribution::two_sided_p_value;
use crate::linalg::SolveError;
use crate::quantile::quantile_of_sorted;
use crate::regression::design::FactorialDesign;
use crate::regression::saturated::{experiment_quantile_fit, per_run_quantiles, Cell};
use crate::streaming::StreamingStats;

/// One row of the coefficient table (Table IV).
#[derive(Debug, Clone, PartialEq)]
pub struct CoefficientEstimate {
    /// Term label, e.g. `"numa:dvfs"`.
    pub term: String,
    /// Point estimate of the coefficient (µs in this library).
    pub estimate: f64,
    /// Bootstrap standard error.
    pub std_error: f64,
    /// Two-sided p-value under the normal null.
    pub p_value: f64,
}

impl CoefficientEstimate {
    /// True if the coefficient is significant at the given level
    /// (the paper bolds p < 0.05).
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Options for [`bootstrap_saturated`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapOptions {
    /// Number of bootstrap replicates.
    pub replicates: usize,
}

impl Default for BootstrapOptions {
    fn default() -> Self {
        BootstrapOptions { replicates: 200 }
    }
}

/// Fits the saturated quantile regression and attaches bootstrap
/// standard errors and p-values to every coefficient.
///
/// # Errors
///
/// Returns [`SolveError`] if the design system is singular.
///
/// # Panics
///
/// Panics if `tau` is outside `(0, 1)`, the design is not saturated, or
/// `replicates` is zero.
pub fn bootstrap_saturated<R: Rng + ?Sized>(
    design: &FactorialDesign,
    cells: &[Cell],
    tau: f64,
    options: BootstrapOptions,
    rng: &mut R,
) -> Result<Vec<CoefficientEstimate>, SolveError> {
    assert!(options.replicates > 0, "bootstrap needs at least one replicate");
    let point = experiment_quantile_fit(design, cells, tau)?;
    let labels = design.term_labels();

    let configs: Vec<Vec<f64>> = cells.iter().map(|c| c.levels.clone()).collect();
    let matrix = design.design_matrix(&configs);

    // Per-run quantile estimates, precomputed once per cell.
    let run_quantiles: Vec<Vec<f64>> =
        cells.iter().map(|cell| per_run_quantiles(cell, tau)).collect();

    let mut per_coef: Vec<StreamingStats> =
        (0..design.num_terms()).map(|_| StreamingStats::new()).collect();

    let mut rhs = vec![0.0f64; cells.len()];
    let mut resampled: Vec<f64> = Vec::new();
    for _ in 0..options.replicates {
        for (ci, quantiles) in run_quantiles.iter().enumerate() {
            let r = quantiles.len();
            resampled.clear();
            resampled.extend((0..r).map(|_| quantiles[rng.gen_range(0..r)]));
            resampled.sort_by(f64::total_cmp);
            rhs[ci] = quantile_of_sorted(&resampled, tau);
        }
        let beta = matrix.solve(&rhs)?;
        for (stat, value) in per_coef.iter_mut().zip(&beta) {
            stat.record(*value);
        }
    }

    Ok(labels
        .into_iter()
        .zip(point)
        .zip(per_coef)
        .map(|((term, estimate), stats)| {
            let std_error = stats.sample_stddev();
            let p_value = if std_error > 0.0 {
                two_sided_p_value(estimate / std_error)
            } else if estimate == 0.0 {
                1.0
            } else {
                0.0
            };
            CoefficientEstimate {
                term,
                estimate,
                std_error,
                p_value,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Cells for `y = base + effect * a + run_shift + noise`, with
    /// several runs per cell so the cluster bootstrap has variance to
    /// find.
    fn synthetic_cells(
        base: f64,
        effect: f64,
        run_sd: f64,
        runs: usize,
        samples: usize,
        rng: &mut SmallRng,
    ) -> (FactorialDesign, Vec<Cell>) {
        let design = FactorialDesign::full(&["a"]);
        let cells = design
            .all_configurations()
            .into_iter()
            .map(|levels| {
                let center = base + effect * levels[0];
                let run_vecs: Vec<Vec<f64>> = (0..runs)
                    .map(|_| {
                        let shift =
                            crate::distribution::sample_standard_normal(rng) * run_sd;
                        (0..samples)
                            .map(|_| center + shift + rng.gen_range(-1.0..1.0))
                            .collect()
                    })
                    .collect();
                Cell::new(levels, run_vecs)
            })
            .collect();
        (design, cells)
    }

    #[test]
    fn real_effect_is_significant() {
        let mut rng = SmallRng::seed_from_u64(21);
        let (design, cells) = synthetic_cells(100.0, 50.0, 1.0, 20, 200, &mut rng);
        let table = bootstrap_saturated(
            &design,
            &cells,
            0.5,
            BootstrapOptions { replicates: 200 },
            &mut rng,
        )
        .unwrap();
        let effect = &table[1];
        assert_eq!(effect.term, "a");
        assert!((effect.estimate - 50.0).abs() < 5.0, "estimate {}", effect.estimate);
        assert!(effect.is_significant(0.05), "p = {}", effect.p_value);
    }

    #[test]
    fn null_effect_is_insignificant() {
        let mut rng = SmallRng::seed_from_u64(22);
        let (design, cells) = synthetic_cells(100.0, 0.0, 5.0, 20, 200, &mut rng);
        let table = bootstrap_saturated(
            &design,
            &cells,
            0.5,
            BootstrapOptions { replicates: 200 },
            &mut rng,
        )
        .unwrap();
        let effect = &table[1];
        assert!(
            !effect.is_significant(0.01),
            "spurious significance: est {} se {} p {}",
            effect.estimate,
            effect.std_error,
            effect.p_value
        );
    }

    #[test]
    fn standard_error_grows_with_run_variance() {
        let mut rng = SmallRng::seed_from_u64(23);
        let (design, calm_cells) = synthetic_cells(100.0, 10.0, 0.5, 15, 100, &mut rng);
        let (_, noisy_cells) = synthetic_cells(100.0, 10.0, 20.0, 15, 100, &mut rng);
        let opts = BootstrapOptions { replicates: 150 };
        let calm =
            bootstrap_saturated(&design, &calm_cells, 0.5, opts, &mut rng).unwrap();
        let noisy =
            bootstrap_saturated(&design, &noisy_cells, 0.5, opts, &mut rng).unwrap();
        assert!(
            noisy[1].std_error > calm[1].std_error * 2.0,
            "noisy se {} vs calm se {}",
            noisy[1].std_error,
            calm[1].std_error
        );
    }

    #[test]
    fn point_estimate_matches_saturated_fit() {
        let mut rng = SmallRng::seed_from_u64(24);
        let (design, cells) = synthetic_cells(50.0, 7.0, 2.0, 10, 100, &mut rng);
        let direct = experiment_quantile_fit(&design, &cells, 0.9).unwrap();
        let table = bootstrap_saturated(
            &design,
            &cells,
            0.9,
            BootstrapOptions { replicates: 10 },
            &mut rng,
        )
        .unwrap();
        for (row, expected) in table.iter().zip(&direct) {
            assert_eq!(row.estimate, *expected);
        }
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_rejected() {
        let mut rng = SmallRng::seed_from_u64(25);
        let (design, cells) = synthetic_cells(1.0, 1.0, 1.0, 2, 10, &mut rng);
        let _ = bootstrap_saturated(
            &design,
            &cells,
            0.5,
            BootstrapOptions { replicates: 0 },
            &mut rng,
        );
    }
}
