//! Ordinary least squares / ANOVA-style mean regression.
//!
//! The paper contrasts quantile regression with classic ANOVA, which
//! "can only attribute the variance of the sample means" and assumes
//! normal residuals (§IV-A). This module provides the mean-regression
//! counterpart so the comparison can be reproduced: identical design
//! matrices, coefficients for the conditional **mean**, classic
//! `σ²(XᵀX)⁻¹` standard errors, and R².

use crate::distribution::two_sided_p_value;
use crate::linalg::{Matrix, SolveError};
use crate::regression::bootstrap::CoefficientEstimate;

/// The result of an OLS fit.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Per-term coefficient estimates with classic standard errors.
    pub coefficients: Vec<CoefficientEstimate>,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Residual variance estimate (σ̂²).
    pub residual_variance: f64,
}

impl OlsFit {
    /// The raw coefficient vector, in design-term order.
    pub fn coefficient_values(&self) -> Vec<f64> {
        self.coefficients.iter().map(|c| c.estimate).collect()
    }
}

/// Fits `y = Xβ + ε` by least squares.
///
/// `term_labels` provides display names for the coefficient table and
/// must have one entry per design column.
///
/// # Errors
///
/// Returns [`SolveError`] if `XᵀX` is singular.
///
/// # Panics
///
/// Panics if dimensions are inconsistent or there are no residual
/// degrees of freedom (`n <= p`).
pub fn ols_fit(
    design: &Matrix,
    y: &[f64],
    term_labels: &[String],
) -> Result<OlsFit, SolveError> {
    let n = design.rows();
    let p = design.cols();
    assert_eq!(y.len(), n, "response length mismatch");
    assert_eq!(term_labels.len(), p, "label count mismatch");
    assert!(n > p, "no residual degrees of freedom (n = {n}, p = {p})");

    let beta = design.solve_least_squares(y)?;
    let fitted = design.mul_vec(&beta);
    let mean_y = y.iter().sum::<f64>() / n as f64;
    let ss_res: f64 = y.iter().zip(&fitted).map(|(a, b)| (a - b).powi(2)).sum();
    let ss_tot: f64 = y.iter().map(|v| (v - mean_y).powi(2)).sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    let sigma2 = ss_res / (n - p) as f64;

    // Var(β̂) = σ² (XᵀX)⁻¹: solve against identity columns.
    let xt = design.transpose();
    let xtx = xt.mul(design);
    let mut coefficients = Vec::with_capacity(p);
    for (j, label) in term_labels.iter().enumerate() {
        let mut e = vec![0.0; p];
        e[j] = 1.0;
        let col = xtx.solve(&e)?;
        let variance = sigma2 * col[j];
        let std_error = variance.max(0.0).sqrt();
        let p_value = if std_error > 0.0 {
            two_sided_p_value(beta[j] / std_error)
        } else if beta[j] == 0.0 {
            1.0
        } else {
            0.0
        };
        coefficients.push(CoefficientEstimate {
            term: label.clone(),
            estimate: beta[j],
            std_error,
            p_value,
        });
    }
    Ok(OlsFit {
        coefficients,
        r_squared,
        residual_variance: sigma2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{sample_exponential, sample_standard_normal};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn line_design(xs: &[f64]) -> (Matrix, Vec<String>) {
        let mut m = Matrix::zeros(xs.len(), 2);
        for (i, &x) in xs.iter().enumerate() {
            m[(i, 0)] = 1.0;
            m[(i, 1)] = x;
        }
        (m, vec!["(Intercept)".into(), "x".into()])
    }

    #[test]
    fn recovers_noiseless_line_with_r2_one() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let y: Vec<f64> = xs.iter().map(|&x| 1.0 + 2.0 * x).collect();
        let (design, labels) = line_design(&xs);
        let fit = ols_fit(&design, &y, &labels).unwrap();
        assert!((fit.coefficients[0].estimate - 1.0).abs() < 1e-9);
        assert!((fit.coefficients[1].estimate - 2.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn significance_of_real_slope() {
        let mut rng = SmallRng::seed_from_u64(31);
        let xs: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .map(|&x| 5.0 + 3.0 * x + sample_standard_normal(&mut rng))
            .collect();
        let (design, labels) = line_design(&xs);
        let fit = ols_fit(&design, &y, &labels).unwrap();
        assert!(fit.coefficients[1].is_significant(0.001));
        assert!((fit.coefficients[1].estimate - 3.0).abs() < 0.2);
    }

    #[test]
    fn null_slope_usually_insignificant() {
        let mut rng = SmallRng::seed_from_u64(32);
        let xs: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .map(|_| 5.0 + sample_standard_normal(&mut rng))
            .collect();
        let (design, labels) = line_design(&xs);
        let fit = ols_fit(&design, &y, &labels).unwrap();
        assert!(!fit.coefficients[1].is_significant(0.01));
    }

    #[test]
    fn ols_misses_tail_effects_that_qr_sees() {
        // The paper's motivation: a factor that changes the *tail* but
        // not the mean. OLS sees nothing; quantile regression at τ=0.99
        // sees the effect.
        let mut rng = SmallRng::seed_from_u64(33);
        let n = 6_000;
        let mut design = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let level = (i % 2) as f64;
            design[(i, 0)] = 1.0;
            design[(i, 1)] = level;
            // level 0: Exp(mean 10); level 1: mixture with a fat tail but
            // the same mean (90% of mass at Exp(5), 10% at Exp(55)).
            let sample = if level == 0.0 {
                sample_exponential(&mut rng, 10.0)
            } else if rng_gen_bool(&mut rng, 0.9) {
                sample_exponential(&mut rng, 5.0)
            } else {
                sample_exponential(&mut rng, 55.0)
            };
            y.push(sample);
        }
        let labels = vec!["(Intercept)".to_string(), "factor".to_string()];
        let ols = ols_fit(&design, &y, &labels).unwrap();
        // Mean effect ~0 (both levels have mean 10).
        assert!(
            ols.coefficients[1].estimate.abs() < 1.0,
            "OLS effect {}",
            ols.coefficients[1].estimate
        );
        let qr = crate::regression::quantile_regression_irls(
            &design,
            &y,
            0.99,
            &crate::regression::IrlsOptions::default(),
        )
        .unwrap();
        // p99 of Exp(10) ≈ 46; p99 of the mixture ≈ 155. Large effect.
        assert!(qr[1] > 30.0, "QR tail effect {}", qr[1]);
    }

    fn rng_gen_bool(rng: &mut SmallRng, p: f64) -> bool {
        use rand::Rng;
        rng.gen::<f64>() < p
    }

    #[test]
    #[should_panic(expected = "degrees of freedom")]
    fn underdetermined_rejected() {
        let design = Matrix::identity(2);
        let labels = vec!["a".to_string(), "b".to_string()];
        let _ = ols_fit(&design, &[1.0, 2.0], &labels);
    }
}
