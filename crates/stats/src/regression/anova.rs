//! Classic fixed-effects ANOVA for 2-level factorial designs.
//!
//! The paper positions quantile regression *against* ANOVA (§IV-A):
//! "the classic ANOVA technique assumes normally distributed residuals
//! and equality of variances … and can only attribute the variance of
//! the sample means". This module implements that classic technique —
//! per-term sums of squares with F statistics — so the comparison can
//! be made quantitatively (see the `ext02_anova` experiment).
//!
//! For a balanced 2-level factorial with orthogonal ±1 contrasts, each
//! term's sum of squares is `N · (effect/2)²` where `effect` is the
//! contrast mean difference; we compute it directly from the design.

use crate::distribution::normal_cdf;
use crate::regression::design::FactorialDesign;

/// One row of an ANOVA table.
#[derive(Debug, Clone, PartialEq)]
pub struct AnovaRow {
    /// Term label (e.g. `"numa:dvfs"`).
    pub term: String,
    /// Sum of squares attributed to the term.
    pub sum_of_squares: f64,
    /// Degrees of freedom (1 for every 2-level term).
    pub degrees_of_freedom: usize,
    /// F statistic against the residual mean square.
    pub f_statistic: f64,
    /// Approximate p-value (normal approximation of √F, adequate for
    /// the residual dfs of real campaigns).
    pub p_value: f64,
    /// Fraction of the total (corrected) sum of squares.
    pub variance_share: f64,
}

/// A complete ANOVA decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct AnovaTable {
    /// Term rows (intercept excluded), in design order.
    pub rows: Vec<AnovaRow>,
    /// Residual sum of squares.
    pub residual_ss: f64,
    /// Residual degrees of freedom.
    pub residual_df: usize,
    /// Total corrected sum of squares.
    pub total_ss: f64,
}

impl AnovaTable {
    /// Fraction of variance the model explains (classic R²).
    pub fn r_squared(&self) -> f64 {
        if self.total_ss == 0.0 {
            1.0
        } else {
            1.0 - self.residual_ss / self.total_ss
        }
    }

    /// The row for a term label.
    pub fn term(&self, label: &str) -> Option<&AnovaRow> {
        self.rows.iter().find(|r| r.term == label)
    }
}

/// Runs fixed-effects ANOVA over per-observation responses grouped by
/// configuration levels.
///
/// `observations` holds `(levels, y)` pairs; levels are 0/1 coded as
/// everywhere else in this crate.
///
/// # Panics
///
/// Panics if there are fewer observations than model terms, or levels
/// have inconsistent arity.
pub fn anova(
    design: &FactorialDesign,
    observations: &[(Vec<f64>, f64)],
) -> AnovaTable {
    let n = observations.len();
    let p = design.num_terms();
    assert!(n > p, "ANOVA needs more observations than terms (n={n}, p={p})");

    let grand_mean = observations.iter().map(|(_, y)| y).sum::<f64>() / n as f64;
    let total_ss: f64 = observations
        .iter()
        .map(|(_, y)| (y - grand_mean).powi(2))
        .sum();

    // Orthogonal contrasts: convert 0/1 coding to ±1. For a balanced
    // design, each term's effect = mean(y · contrast) and its SS is
    // n · effect².
    let labels = design.term_labels();
    let mut rows = Vec::with_capacity(p - 1);
    let mut model_ss = 0.0;
    for (t, label) in labels.iter().enumerate().skip(1) {
        let mut dot = 0.0;
        for (levels, y) in observations {
            assert_eq!(levels.len(), design.num_factors(), "level arity");
            let x = design.row(levels)[t];
            let contrast = 2.0 * x - contrast_offset(design, t, levels);
            dot += contrast * y;
        }
        let effect = dot / n as f64;
        let ss = n as f64 * effect * effect;
        model_ss += ss;
        rows.push((label.clone(), ss));
    }
    let residual_ss = (total_ss - model_ss).max(0.0);
    let residual_df = n - p;
    let residual_ms = residual_ss / residual_df.max(1) as f64;

    let rows = rows
        .into_iter()
        .map(|(term, ss)| {
            let f = if residual_ms > 0.0 { ss / residual_ms } else { f64::INFINITY };
            // √F ~ |t| with residual_df dof; normal approximation.
            let z = f.sqrt();
            let p_value = (2.0 * (1.0 - normal_cdf(z))).clamp(0.0, 1.0);
            AnovaRow {
                term,
                sum_of_squares: ss,
                degrees_of_freedom: 1,
                f_statistic: f,
                p_value,
                variance_share: if total_ss > 0.0 { ss / total_ss } else { 0.0 },
            }
        })
        .collect();

    AnovaTable {
        rows,
        residual_ss,
        residual_df,
        total_ss,
    }
}

/// The ±1 contrast for term `t` is the product of ±1-coded factors in
/// the term; with 0/1 inputs, each factor contributes `2x − 1`. Since
/// `design.row` gives the *product of the 0/1 levels*, we recompute the
/// ±1 product here via the offset trick: for single factors the
/// contrast is `2x − 1`; for interactions it is the product of the
/// members' `2x − 1` values. This helper returns the value such that
/// `2 * row_value - offset` equals that product for the given levels.
fn contrast_offset(design: &FactorialDesign, term: usize, levels: &[f64]) -> f64 {
    // Compute the true ±1 contrast directly, then derive the offset.
    let labels = design.term_labels();
    let label = &labels[term];
    let names = design.factor_names();
    let mut contrast = 1.0;
    for part in label.split(':') {
        let idx = names
            .iter()
            .position(|n| n == part)
            .expect("term references a known factor");
        contrast *= 2.0 * levels[idx] - 1.0;
    }
    // 2 * row - offset = contrast  =>  offset = 2 * row - contrast.
    2.0 * design.row(levels)[term] - contrast
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced_observations(
        f: impl Fn(&[f64]) -> f64,
        replicates: usize,
        noise: impl Fn(usize) -> f64,
    ) -> Vec<(Vec<f64>, f64)> {
        let design = FactorialDesign::full(&["a", "b"]);
        let mut obs = Vec::new();
        let mut i = 0;
        for levels in design.all_configurations() {
            for _ in 0..replicates {
                obs.push((levels.clone(), f(&levels) + noise(i)));
                i += 1;
            }
        }
        obs
    }

    #[test]
    fn main_effect_dominates_decomposition() {
        let design = FactorialDesign::full(&["a", "b"]);
        let obs = balanced_observations(
            |lv| 10.0 + 8.0 * lv[0],
            10,
            |i| (i % 5) as f64 * 0.1,
        );
        let table = anova(&design, &obs);
        let a = table.term("a").unwrap();
        assert!(a.variance_share > 0.9, "share {}", a.variance_share);
        assert!(a.p_value < 1e-6);
        let b = table.term("b").unwrap();
        assert!(b.variance_share < 0.01);
        assert!(table.r_squared() > 0.95);
    }

    #[test]
    fn interaction_detected() {
        let design = FactorialDesign::full(&["a", "b"]);
        let obs = balanced_observations(
            |lv| 5.0 + 4.0 * lv[0] * lv[1],
            8,
            |i| (i % 3) as f64 * 0.05,
        );
        let table = anova(&design, &obs);
        let ab = table.term("a:b").unwrap();
        assert!(ab.p_value < 1e-6, "p {}", ab.p_value);
        // With 0/1 coding, x1*x2 contributes to mains too (non-centred),
        // but the ±1 contrast decomposition attributes SS to all three
        // terms; the interaction must carry a substantial share.
        assert!(ab.variance_share > 0.2, "share {}", ab.variance_share);
    }

    #[test]
    fn pure_noise_explains_nothing() {
        let design = FactorialDesign::full(&["a", "b"]);
        let obs = balanced_observations(
            |_| 100.0,
            16,
            |i| ((i * 2_654_435_761) % 97) as f64 / 10.0,
        );
        let table = anova(&design, &obs);
        assert!(table.r_squared() < 0.2, "r2 {}", table.r_squared());
        for row in &table.rows {
            assert!(row.variance_share < 0.1);
        }
    }

    #[test]
    fn shares_sum_to_at_most_one() {
        let design = FactorialDesign::full(&["a", "b"]);
        let obs = balanced_observations(
            |lv| 1.0 + lv[0] + 2.0 * lv[1],
            4,
            |i| (i % 7) as f64 * 0.2,
        );
        let table = anova(&design, &obs);
        let total_share: f64 = table.rows.iter().map(|r| r.variance_share).sum();
        assert!(total_share <= 1.0 + 1e-9, "shares {total_share}");
        assert!((table.total_ss - (table.residual_ss
            + table.rows.iter().map(|r| r.sum_of_squares).sum::<f64>()))
        .abs()
            < 1e-6 * table.total_ss.max(1.0));
    }

    #[test]
    #[should_panic(expected = "more observations")]
    fn underdetermined_rejected() {
        let design = FactorialDesign::full(&["a", "b"]);
        let obs = vec![(vec![0.0, 0.0], 1.0)];
        anova(&design, &obs);
    }
}
