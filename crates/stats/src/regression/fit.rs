//! The pinball (check) loss and the paper's pseudo-R² (Eqs. 2–4).

/// The weight the τ-quantile loss assigns to a prediction error
/// (Eq. 4): `τ` for underestimation (`err >= 0`, since
/// `err = observed - predicted`), `1 - τ` for overestimation.
///
/// # Examples
///
/// ```
/// use treadmill_stats::regression::check_weight;
///
/// assert_eq!(check_weight(0.99, 5.0), 0.99);   // underestimated
/// assert!((check_weight(0.99, -5.0) - 0.01).abs() < 1e-12); // overestimated
/// ```
pub fn check_weight(tau: f64, err: f64) -> f64 {
    if err < 0.0 {
        1.0 - tau
    } else {
        tau
    }
}

/// The pinball loss of one prediction error: `w(τ, err) * |err|`.
pub fn pinball_loss(tau: f64, err: f64) -> f64 {
    check_weight(tau, err) * err.abs()
}

/// Total pinball loss of a prediction vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn total_pinball_loss(tau: f64, observed: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(observed.len(), predicted.len(), "length mismatch");
    observed
        .iter()
        .zip(predicted)
        .map(|(&y, &p)| pinball_loss(tau, y - p))
        .sum()
}

/// The paper's pseudo-R² (Eq. 2): one minus the ratio of the model's
/// total pinball loss to the loss of the best constant model (the
/// unconditional τ-quantile of the observations).
///
/// Returns a value in `(-inf, 1]`; the paper reports ≥ 0.9 for its fits.
/// A value of 0 means the model is no better than the constant; values
/// below 0 mean it is worse.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Examples
///
/// ```
/// use treadmill_stats::regression::pseudo_r_squared;
///
/// let y = [1.0, 2.0, 3.0, 4.0];
/// // Perfect predictions: pseudo-R² = 1.
/// assert_eq!(pseudo_r_squared(0.9, &y, &y), 1.0);
/// ```
pub fn pseudo_r_squared(tau: f64, observed: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(observed.len(), predicted.len(), "length mismatch");
    assert!(!observed.is_empty(), "pseudo-R² of empty sample");
    let model_loss = total_pinball_loss(tau, observed, predicted);
    let constant = crate::quantile::quantile(observed, tau);
    let constant_loss: f64 = observed
        .iter()
        .map(|&y| pinball_loss(tau, y - constant))
        .sum();
    if constant_loss == 0.0 {
        return if model_loss == 0.0 { 1.0 } else { f64::NEG_INFINITY };
    }
    1.0 - model_loss / constant_loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn weights_match_eq4() {
        assert_eq!(check_weight(0.95, 1.0), 0.95);
        assert_eq!(check_weight(0.95, 0.0), 0.95); // err >= 0 branch
        assert!((check_weight(0.95, -1.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn pinball_is_asymmetric() {
        // At τ = 0.99 underestimating by 10 costs 99x more than
        // overestimating by 10 costs at weight (1-τ).
        let under = pinball_loss(0.99, 10.0);
        let over = pinball_loss(0.99, -10.0);
        assert!((under / over - 99.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_quantile_minimises_pinball() {
        // The τ-quantile is the argmin of mean pinball loss.
        let data: Vec<f64> = (1..=101).map(f64::from).collect();
        let tau = 0.9;
        let q = crate::quantile::quantile(&data, tau);
        let loss_at = |c: f64| -> f64 {
            data.iter().map(|&y| pinball_loss(tau, y - c)).sum()
        };
        let at_quantile = loss_at(q);
        for delta in [-5.0, -1.0, 1.0, 5.0] {
            assert!(loss_at(q + delta) >= at_quantile - 1e-9);
        }
    }

    #[test]
    fn pseudo_r2_zero_for_constant_model() {
        let y: Vec<f64> = (1..=100).map(f64::from).collect();
        let tau = 0.95;
        let constant = crate::quantile::quantile(&y, tau);
        let predictions = vec![constant; y.len()];
        let r2 = pseudo_r_squared(tau, &y, &predictions);
        assert!(r2.abs() < 1e-9, "r2 = {r2}");
    }

    #[test]
    fn pseudo_r2_negative_for_bad_model() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let predictions = [100.0, 100.0, 100.0, 100.0];
        assert!(pseudo_r_squared(0.5, &y, &predictions) < 0.0);
    }

    #[test]
    fn degenerate_constant_data() {
        let y = [5.0, 5.0, 5.0];
        assert_eq!(pseudo_r_squared(0.9, &y, &y), 1.0);
        assert_eq!(pseudo_r_squared(0.9, &y, &[5.0, 5.0, 6.0]), f64::NEG_INFINITY);
    }

    proptest! {
        #[test]
        fn pinball_loss_nonnegative(tau in 0.01f64..0.99, err in -1e6f64..1e6) {
            prop_assert!(pinball_loss(tau, err) >= 0.0);
        }

        #[test]
        fn pseudo_r2_at_most_one(
            y in prop::collection::vec(0.0f64..1e3, 2..100),
            shift in -10.0f64..10.0,
            tau in 0.05f64..0.95,
        ) {
            let pred: Vec<f64> = y.iter().map(|v| v + shift).collect();
            prop_assert!(pseudo_r_squared(tau, &y, &pred) <= 1.0 + 1e-12);
        }
    }
}
