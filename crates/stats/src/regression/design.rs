//! Full-factorial experiment designs with interaction terms.

use crate::linalg::Matrix;

/// A 2-level factorial design over named factors, expanded with
/// interaction terms up to a chosen order (Eq. 1 in the paper).
///
/// Factors are coded `0.0` (low level) / `1.0` (high level) as in the
/// paper (§V-A). The first term is always the intercept.
///
/// # Examples
///
/// ```
/// use treadmill_stats::regression::FactorialDesign;
///
/// let design = FactorialDesign::full(&["numa", "turbo"]);
/// assert_eq!(
///     design.term_labels(),
///     vec!["(Intercept)", "numa", "turbo", "numa:turbo"],
/// );
/// let row = design.row(&[1.0, 1.0]);
/// assert_eq!(row, vec![1.0, 1.0, 1.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactorialDesign {
    factor_names: Vec<String>,
    // Each term is the set of factor indices multiplied together; the
    // empty set is the intercept. Ordered by (order, lexicographic index).
    terms: Vec<Vec<usize>>,
}

impl FactorialDesign {
    /// A design with all interactions up to `max_order`.
    ///
    /// # Panics
    ///
    /// Panics if there are no factors, more than 16 factors, or
    /// `max_order` is zero.
    pub fn with_interactions(factor_names: &[&str], max_order: usize) -> Self {
        assert!(!factor_names.is_empty(), "design needs at least one factor");
        assert!(factor_names.len() <= 16, "too many factors for a full factorial");
        assert!(max_order >= 1, "interaction order must be at least 1");
        let k = factor_names.len();
        let mut terms: Vec<Vec<usize>> = vec![Vec::new()];
        for order in 1..=max_order.min(k) {
            let mut combo: Vec<usize> = (0..order).collect();
            loop {
                terms.push(combo.clone());
                // Next combination of `order` out of `k`.
                let mut i = order;
                loop {
                    if i == 0 {
                        break;
                    }
                    i -= 1;
                    if combo[i] != i + k - order {
                        combo[i] += 1;
                        for j in i + 1..order {
                            combo[j] = combo[j - 1] + 1;
                        }
                        break;
                    }
                    if i == 0 {
                        combo.clear();
                        break;
                    }
                }
                if combo.is_empty() {
                    break;
                }
            }
        }
        FactorialDesign {
            factor_names: factor_names.iter().map(|s| s.to_string()).collect(),
            terms,
        }
    }

    /// The fully saturated design: all interactions of every order.
    ///
    /// For `k` factors this has `2^k` terms, so per-cell quantiles are
    /// interpolated exactly.
    pub fn full(factor_names: &[&str]) -> Self {
        Self::with_interactions(factor_names, factor_names.len())
    }

    /// Number of factors.
    pub fn num_factors(&self) -> usize {
        self.factor_names.len()
    }

    /// Number of model terms (including the intercept).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Factor names as given at construction.
    pub fn factor_names(&self) -> &[String] {
        &self.factor_names
    }

    /// Human-readable term labels: `(Intercept)`, `a`, `a:b`, …
    pub fn term_labels(&self) -> Vec<String> {
        self.terms
            .iter()
            .map(|term| {
                if term.is_empty() {
                    "(Intercept)".to_string()
                } else {
                    term.iter()
                        .map(|&i| self.factor_names[i].as_str())
                        .collect::<Vec<_>>()
                        .join(":")
                }
            })
            .collect()
    }

    /// Expands one configuration's factor levels into a design-matrix
    /// row (products of the involved factors).
    ///
    /// # Panics
    ///
    /// Panics if `levels.len()` differs from the number of factors.
    pub fn row(&self, levels: &[f64]) -> Vec<f64> {
        assert_eq!(
            levels.len(),
            self.factor_names.len(),
            "level vector length mismatch"
        );
        self.terms
            .iter()
            .map(|term| term.iter().map(|&i| levels[i]).product())
            .collect()
    }

    /// Builds the design matrix for many configurations.
    pub fn design_matrix(&self, configurations: &[Vec<f64>]) -> Matrix {
        let p = self.num_terms();
        let mut m = Matrix::zeros(configurations.len(), p);
        for (r, levels) in configurations.iter().enumerate() {
            for (c, v) in self.row(levels).into_iter().enumerate() {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Predicts the response for `levels` given fitted `coefficients`.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients.len()` differs from [`Self::num_terms`].
    pub fn predict(&self, coefficients: &[f64], levels: &[f64]) -> f64 {
        assert_eq!(coefficients.len(), self.num_terms(), "coefficient length mismatch");
        self.row(levels)
            .iter()
            .zip(coefficients)
            .map(|(x, c)| x * c)
            .sum()
    }

    /// Enumerates all `2^k` corner configurations in binary order
    /// (factor 0 is the least-significant bit).
    pub fn all_configurations(&self) -> Vec<Vec<f64>> {
        let k = self.num_factors();
        (0..(1usize << k))
            .map(|bits| {
                (0..k)
                    .map(|i| if bits >> i & 1 == 1 { 1.0 } else { 0.0 })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_design_has_2k_terms() {
        let d = FactorialDesign::full(&["numa", "turbo", "dvfs", "nic"]);
        assert_eq!(d.num_terms(), 16);
        let labels = d.term_labels();
        assert_eq!(labels[0], "(Intercept)");
        assert!(labels.contains(&"numa:turbo:dvfs:nic".to_string()));
        assert!(labels.contains(&"dvfs:nic".to_string()));
    }

    #[test]
    fn limited_interaction_order() {
        let d = FactorialDesign::with_interactions(&["a", "b", "c"], 2);
        // 1 intercept + 3 mains + 3 pairwise.
        assert_eq!(d.num_terms(), 7);
        assert!(!d.term_labels().contains(&"a:b:c".to_string()));
    }

    #[test]
    fn row_products() {
        let d = FactorialDesign::full(&["a", "b"]);
        assert_eq!(d.row(&[0.0, 0.0]), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(d.row(&[1.0, 0.0]), vec![1.0, 1.0, 0.0, 0.0]);
        assert_eq!(d.row(&[0.0, 1.0]), vec![1.0, 0.0, 1.0, 0.0]);
        assert_eq!(d.row(&[1.0, 1.0]), vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn paper_prediction_example() {
        // §V-B: p95 estimate for numa+turbo high = intercept + numa +
        // turbo + numa:turbo = 155 + 24 - 12 + 5 = 172us.
        let d = FactorialDesign::full(&["numa", "turbo"]);
        // Terms: intercept, numa, turbo, numa:turbo.
        let coef = vec![155.0, 24.0, -12.0, 5.0];
        let pred = d.predict(&coef, &[1.0, 1.0]);
        assert!((pred - 172.0).abs() < 1e-12);
    }

    #[test]
    fn design_matrix_of_all_configurations_is_square_and_invertible() {
        let d = FactorialDesign::full(&["a", "b", "c", "d"]);
        let configs = d.all_configurations();
        assert_eq!(configs.len(), 16);
        let m = d.design_matrix(&configs);
        // Invertible: solve for arbitrary rhs without error.
        let rhs: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let beta = m.solve(&rhs).unwrap();
        let back = m.mul_vec(&beta);
        for (a, b) in back.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn all_configurations_binary_order() {
        let d = FactorialDesign::full(&["a", "b"]);
        assert_eq!(
            d.all_configurations(),
            vec![
                vec![0.0, 0.0],
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
            ],
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn row_checks_arity() {
        FactorialDesign::full(&["a", "b"]).row(&[1.0]);
    }
}
