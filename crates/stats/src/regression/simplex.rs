//! Exact quantile regression via the simplex method.
//!
//! Quantile regression is a linear program (Koenker, 2005). With the
//! coefficient vector split into positive parts `β = β⁺ − β⁻` and
//! residuals into `u − v` (`u, v ≥ 0`):
//!
//! ```text
//! min  Σ τ·uᵢ + (1−τ)·vᵢ
//! s.t. X β⁺ − X β⁻ + u − v = y,   β⁺, β⁻, u, v ≥ 0
//! ```
//!
//! This module implements a dense primal simplex with Bland's rule
//! (guaranteeing termination). It is intended as an **exact oracle** for
//! small problems — testing the IRLS and saturated solvers — not as the
//! production path for millions of samples.

use crate::linalg::{Matrix, SolveError};

const EPS: f64 = 1e-9;

/// Solves the quantile-regression LP exactly.
///
/// Returns the coefficient vector of length `design.cols()`.
///
/// # Errors
///
/// Returns [`SolveError::Singular`] if the simplex basis degenerates
/// numerically (should not happen for well-posed inputs).
///
/// # Panics
///
/// Panics if `tau` is outside `(0, 1)`, the response length mismatches
/// the design, or the problem is empty.
///
/// # Examples
///
/// ```
/// use treadmill_stats::linalg::Matrix;
/// use treadmill_stats::regression::quantile_regression_exact;
///
/// // Intercept-only model: the solution is the empirical τ-quantile.
/// let y = [1.0, 2.0, 3.0, 4.0, 100.0];
/// let mut design = Matrix::zeros(5, 1);
/// for i in 0..5 { design[(i, 0)] = 1.0; }
/// let beta = quantile_regression_exact(&design, &y, 0.5)?;
/// assert_eq!(beta[0], 3.0);
/// # Ok::<(), treadmill_stats::linalg::SolveError>(())
/// ```
pub fn quantile_regression_exact(
    design: &Matrix,
    y: &[f64],
    tau: f64,
) -> Result<Vec<f64>, SolveError> {
    assert!(tau > 0.0 && tau < 1.0, "quantile level {tau} outside (0, 1)");
    assert_eq!(y.len(), design.rows(), "response length mismatch");
    assert!(design.rows() > 0 && design.cols() > 0, "empty problem");

    let n = design.rows();
    let p = design.cols();
    let num_vars = 2 * p + 2 * n; // β⁺, β⁻, u, v
    let u0 = 2 * p;
    let v0 = 2 * p + n;

    // Tableau rows: n constraints; columns: variables + rhs.
    // Rows are sign-normalised so the initial basis (uᵢ if yᵢ ≥ 0 else
    // vᵢ) is an identity submatrix.
    let mut tableau = vec![vec![0.0f64; num_vars + 1]; n];
    let mut basis = vec![0usize; n];
    for i in 0..n {
        let sign = if y[i] >= 0.0 { 1.0 } else { -1.0 };
        for j in 0..p {
            tableau[i][j] = sign * design[(i, j)];
            tableau[i][p + j] = -sign * design[(i, j)];
        }
        tableau[i][u0 + i] = sign;
        tableau[i][v0 + i] = -sign;
        tableau[i][num_vars] = sign * y[i];
        basis[i] = if y[i] >= 0.0 { u0 + i } else { v0 + i };
    }

    let mut cost = vec![0.0f64; num_vars];
    for i in 0..n {
        cost[u0 + i] = tau;
        cost[v0 + i] = 1.0 - tau;
    }

    // Reduced costs: z_j - c_j where z_j = c_B' B^{-1} A_j. Since the
    // basis starts as an identity with basic costs c_B, maintain the
    // objective row explicitly.
    let mut obj = vec![0.0f64; num_vars + 1];
    for j in 0..=num_vars {
        let mut z = 0.0;
        for i in 0..n {
            z += cost_of(&cost, basis[i]) * tableau[i][j];
        }
        obj[j] = z - if j < num_vars { cost[j] } else { 0.0 };
    }

    // Primal simplex with Bland's rule.
    let max_pivots = 50_000usize.max(200 * n);
    for _ in 0..max_pivots {
        // Entering: smallest index with positive reduced cost.
        let entering = match (0..num_vars).find(|&j| obj[j] > EPS) {
            Some(j) => j,
            None => break, // optimal
        };
        // Leaving: min ratio, ties by smallest basis index (Bland).
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..n {
            let a = tableau[i][entering];
            if a > EPS {
                let ratio = tableau[i][num_vars] / a;
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leaving.is_some_and(|l| basis[i] < basis[l]));
                if better {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(row) = leaving else {
            // Unbounded: cannot happen for this LP (objective bounded
            // below by 0), so treat as numerical failure.
            return Err(SolveError::Singular);
        };
        pivot(&mut tableau, &mut obj, row, entering, num_vars);
        basis[row] = entering;
    }

    let mut beta = vec![0.0f64; p];
    for (i, &b) in basis.iter().enumerate() {
        let value = tableau[i][num_vars];
        if b < p {
            beta[b] += value;
        } else if b < 2 * p {
            beta[b - p] -= value;
        }
    }
    Ok(beta)
}

fn cost_of(cost: &[f64], var: usize) -> f64 {
    cost[var]
}

fn pivot(
    tableau: &mut [Vec<f64>],
    obj: &mut [f64],
    row: usize,
    col: usize,
    num_vars: usize,
) {
    let pivot_val = tableau[row][col];
    for value in &mut tableau[row][..=num_vars] {
        *value /= pivot_val;
    }
    // Snapshot the normalised pivot row so the elimination loops can
    // walk other rows mutably without aliasing it.
    let pivot_row: Vec<f64> = tableau[row][..=num_vars].to_vec();
    for (i, other) in tableau.iter_mut().enumerate() {
        if i == row {
            continue;
        }
        let factor = other[col];
        if factor.abs() < EPS {
            continue;
        }
        for (value, &p) in other[..=num_vars].iter_mut().zip(&pivot_row) {
            *value -= factor * p;
        }
    }
    let factor = obj[col];
    if factor.abs() > EPS {
        for (value, &p) in obj[..=num_vars].iter_mut().zip(&pivot_row) {
            *value -= factor * p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::fit::total_pinball_loss;
    use crate::regression::{quantile_regression_irls, IrlsOptions};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn intercept_design(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, 1);
        for i in 0..n {
            m[(i, 0)] = 1.0;
        }
        m
    }

    #[test]
    fn intercept_only_returns_a_quantile_minimiser() {
        let y = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        for &tau in &[0.25, 0.5, 0.75, 0.9] {
            let design = intercept_design(y.len());
            let beta = quantile_regression_exact(&design, &y, tau).unwrap();
            let lp_loss = total_pinball_loss(tau, &y, &vec![beta[0]; y.len()]);
            // Compare against every data point as candidate constant
            // (an optimal constant is always a data point).
            let best = y
                .iter()
                .map(|&c| total_pinball_loss(tau, &y, &vec![c; y.len()]))
                .fold(f64::INFINITY, f64::min);
            assert!(lp_loss <= best + 1e-9, "tau {tau}: {lp_loss} vs {best}");
        }
    }

    #[test]
    fn negative_responses_handled() {
        let y = [-5.0, -1.0, 0.0, 2.0, 7.0];
        let design = intercept_design(y.len());
        let beta = quantile_regression_exact(&design, &y, 0.5).unwrap();
        assert_eq!(beta[0], 0.0);
    }

    #[test]
    fn two_regressor_fit_matches_interpolation_property() {
        // With p regressors in general position the QR solution
        // interpolates exactly p data points.
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 40;
        let mut design = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let x: f64 = rng.gen_range(0.0..10.0);
            design[(i, 0)] = 1.0;
            design[(i, 1)] = x;
            y.push(2.0 + 0.5 * x + rng.gen_range(-1.0..1.0));
        }
        let beta = quantile_regression_exact(&design, &y, 0.5).unwrap();
        let interpolated = (0..n)
            .filter(|&i| {
                let fitted = beta[0] + beta[1] * design[(i, 1)];
                (fitted - y[i]).abs() < 1e-7
            })
            .count();
        assert!(interpolated >= 2, "only {interpolated} points interpolated");
    }

    #[test]
    fn exact_loss_lower_or_equal_to_irls() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 120;
        let mut design = Matrix::zeros(n, 3);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = rng.gen_range(0.0..1.0);
            let b = rng.gen_range(0.0..1.0);
            design[(i, 0)] = 1.0;
            design[(i, 1)] = a;
            design[(i, 2)] = b;
            y.push(1.0 + 2.0 * a - b + rng.gen_range(0.0..3.0));
        }
        for &tau in &[0.5, 0.9] {
            let exact = quantile_regression_exact(&design, &y, tau).unwrap();
            let approx =
                quantile_regression_irls(&design, &y, tau, &IrlsOptions::default()).unwrap();
            let exact_loss = total_pinball_loss(tau, &y, &design.mul_vec(&exact));
            let approx_loss = total_pinball_loss(tau, &y, &design.mul_vec(&approx));
            assert!(
                exact_loss <= approx_loss + 1e-6,
                "tau {tau}: exact {exact_loss} > irls {approx_loss}"
            );
            // IRLS should also be close to optimal.
            assert!(
                approx_loss <= exact_loss * 1.05 + 1e-6,
                "tau {tau}: irls {approx_loss} far from optimal {exact_loss}"
            );
        }
    }

    #[test]
    fn factorial_design_cells_recover_cell_quantiles() {
        // 2 factors, 4 cells with distinct levels; saturated design:
        // the LP must interpolate per-cell medians.
        use crate::regression::FactorialDesign;
        let fdesign = FactorialDesign::full(&["a", "b"]);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let cell_medians = [10.0, 20.0, 30.0, 70.0];
        for (idx, levels) in fdesign.all_configurations().into_iter().enumerate() {
            for offset in [-1.0, 0.0, 1.0] {
                rows.push(levels.clone());
                y.push(cell_medians[idx] + offset);
            }
        }
        let design = fdesign.design_matrix(&rows);
        let beta = quantile_regression_exact(&design, &y, 0.5).unwrap();
        for (idx, levels) in fdesign.all_configurations().into_iter().enumerate() {
            let pred = fdesign.predict(&beta, &levels);
            assert!(
                (pred - cell_medians[idx]).abs() < 1e-7,
                "cell {idx}: {pred} vs {}",
                cell_medians[idx]
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn tau_checked() {
        let design = intercept_design(2);
        let _ = quantile_regression_exact(&design, &[1.0, 2.0], 0.0);
    }
}
