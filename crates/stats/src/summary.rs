//! Per-run latency summaries.

use crate::histogram::AdaptiveHistogram;
use crate::quantile::quantile_of_sorted;

/// The percentiles Treadmill reports, matching the paper's figures.
pub const REPORTED_PERCENTILES: [f64; 5] = [0.50, 0.90, 0.95, 0.99, 0.999];

/// A compact summary of one latency distribution, in microseconds.
///
/// This is what a Treadmill instance reports at the end of a run and
/// what the multi-client aggregation procedure consumes: the paper's
/// procedure extracts "the interested metrics (e.g., 99th-percentile
/// latency) at each client individually" before aggregating (§II-B).
///
/// # Examples
///
/// ```
/// use treadmill_stats::LatencySummary;
///
/// let samples: Vec<f64> = (1..=1000).map(f64::from).collect();
/// let summary = LatencySummary::from_samples(&samples);
/// assert_eq!(summary.count, 1000);
/// assert!((summary.p99 - 990.01).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples summarised.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl LatencySummary {
    /// Summarises a raw sample vector.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary of empty sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        LatencySummary {
            count: sorted.len() as u64,
            mean,
            p50: quantile_of_sorted(&sorted, 0.50),
            p90: quantile_of_sorted(&sorted, 0.90),
            p95: quantile_of_sorted(&sorted, 0.95),
            p99: quantile_of_sorted(&sorted, 0.99),
            p999: quantile_of_sorted(&sorted, 0.999),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        }
    }

    /// Summarises an adaptive histogram.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    pub fn from_histogram(hist: &AdaptiveHistogram) -> Self {
        assert!(!hist.is_empty(), "summary of empty histogram");
        LatencySummary {
            count: hist.count(),
            mean: hist.mean(),
            p50: hist.quantile(0.50),
            p90: hist.quantile(0.90),
            p95: hist.quantile(0.95),
            p99: hist.quantile(0.99),
            p999: hist.quantile(0.999),
            min: hist.min(),
            max: hist.max(),
        }
    }

    /// Looks up the summary value for one of the reported percentiles.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not one of [`REPORTED_PERCENTILES`].
    pub fn percentile(&self, p: f64) -> f64 {
        match p {
            _ if (p - 0.50).abs() < 1e-9 => self.p50,
            _ if (p - 0.90).abs() < 1e-9 => self.p90,
            _ if (p - 0.95).abs() < 1e-9 => self.p95,
            _ if (p - 0.99).abs() < 1e-9 => self.p99,
            _ if (p - 0.999).abs() < 1e-9 => self.p999,
            _ => panic!("percentile {p} is not one of the reported percentiles"),
        }
    }
}

/// Aggregates per-client summaries the **correct** way (paper §III-B):
/// extract each metric per client, then apply an aggregation function
/// across clients. Returns the mean across clients for each percentile.
///
/// # Panics
///
/// Panics if `summaries` is empty.
pub fn aggregate_mean(summaries: &[LatencySummary]) -> LatencySummary {
    assert!(!summaries.is_empty(), "aggregating zero summaries");
    let n = summaries.len() as f64;
    let mut total_count = 0;
    let mut acc = [0.0f64; 7];
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for s in summaries {
        total_count += s.count;
        acc[0] += s.mean;
        acc[1] += s.p50;
        acc[2] += s.p90;
        acc[3] += s.p95;
        acc[4] += s.p99;
        acc[5] += s.p999;
        min = min.min(s.min);
        max = max.max(s.max);
    }
    LatencySummary {
        count: total_count,
        mean: acc[0] / n,
        p50: acc[1] / n,
        p90: acc[2] / n,
        p95: acc[3] / n,
        p99: acc[4] / n,
        p999: acc[5] / n,
        min,
        max,
    }
}

/// Aggregates per-client summaries by the **median** across clients,
/// the robust alternative the paper mentions for outlier clients.
///
/// # Panics
///
/// Panics if `summaries` is empty.
pub fn aggregate_median(summaries: &[LatencySummary]) -> LatencySummary {
    assert!(!summaries.is_empty(), "aggregating zero summaries");
    fn median_of(values: &mut [f64]) -> f64 {
        values.sort_by(f64::total_cmp);
        quantile_of_sorted(values, 0.5)
    }
    let mut means: Vec<f64> = summaries.iter().map(|s| s.mean).collect();
    let mut p50s: Vec<f64> = summaries.iter().map(|s| s.p50).collect();
    let mut p90s: Vec<f64> = summaries.iter().map(|s| s.p90).collect();
    let mut p95s: Vec<f64> = summaries.iter().map(|s| s.p95).collect();
    let mut p99s: Vec<f64> = summaries.iter().map(|s| s.p99).collect();
    let mut p999s: Vec<f64> = summaries.iter().map(|s| s.p999).collect();
    LatencySummary {
        count: summaries.iter().map(|s| s.count).sum(),
        mean: median_of(&mut means),
        p50: median_of(&mut p50s),
        p90: median_of(&mut p90s),
        p95: median_of(&mut p95s),
        p99: median_of(&mut p99s),
        p999: median_of(&mut p999s),
        min: summaries.iter().map(|s| s.min).fold(f64::INFINITY, f64::min),
        max: summaries.iter().map(|s| s.max).fold(f64::NEG_INFINITY, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_of_constant(value: f64, count: usize) -> LatencySummary {
        LatencySummary::from_samples(&vec![value; count])
    }

    #[test]
    fn from_samples_orders_percentiles() {
        let samples: Vec<f64> = (1..=10_000).map(f64::from).collect();
        let s = LatencySummary::from_samples(&samples);
        assert!(s.min <= s.p50 && s.p50 <= s.p90);
        assert!(s.p90 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p99 <= s.p999 && s.p999 <= s.max);
        assert_eq!(s.count, 10_000);
    }

    #[test]
    fn from_histogram_close_to_exact() {
        let samples: Vec<f64> = (1..=50_000).map(|i| (i % 500) as f64 + 100.0).collect();
        let exact = LatencySummary::from_samples(&samples);
        let mut hist = AdaptiveHistogram::new();
        for v in &samples {
            hist.record(*v);
        }
        let approx = LatencySummary::from_histogram(&hist);
        assert!((approx.p99 - exact.p99).abs() < 5.0);
        assert!((approx.mean - exact.mean).abs() < 1e-9, "mean is exact");
    }

    #[test]
    fn percentile_lookup() {
        let s = summary_of_constant(7.0, 10);
        for &p in &REPORTED_PERCENTILES {
            assert_eq!(s.percentile(p), 7.0);
        }
    }

    #[test]
    #[should_panic(expected = "not one of")]
    fn percentile_lookup_rejects_unknown() {
        summary_of_constant(1.0, 2).percentile(0.42);
    }

    #[test]
    fn mean_aggregation_averages_metrics() {
        let a = summary_of_constant(100.0, 10);
        let b = summary_of_constant(200.0, 10);
        let agg = aggregate_mean(&[a, b]);
        assert_eq!(agg.p99, 150.0);
        assert_eq!(agg.count, 20);
        assert_eq!(agg.min, 100.0);
        assert_eq!(agg.max, 200.0);
    }

    #[test]
    fn median_aggregation_resists_outlier_client() {
        // Three well-behaved clients and one cross-rack outlier (Fig. 2).
        let summaries = vec![
            summary_of_constant(100.0, 10),
            summary_of_constant(102.0, 10),
            summary_of_constant(98.0, 10),
            summary_of_constant(1_000.0, 10),
        ];
        let mean_agg = aggregate_mean(&summaries);
        let median_agg = aggregate_median(&summaries);
        assert!(mean_agg.p99 > 300.0, "mean is dragged by the outlier");
        assert!(median_agg.p99 < 110.0, "median resists the outlier");
    }

    #[test]
    #[should_panic(expected = "zero summaries")]
    fn aggregate_empty_panics() {
        aggregate_mean(&[]);
    }
}
