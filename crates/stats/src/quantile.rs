//! Empirical quantile estimation.
//!
//! Uses the linear-interpolation estimator (R's "type 7", the default in
//! most statistical software): for a sorted sample `x[0..n]` and
//! probability `p`, the estimate interpolates between the order statistics
//! bracketing rank `p * (n - 1)`.

/// Estimates the `p`-quantile of an already **sorted** slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use treadmill_stats::quantile::quantile_of_sorted;
///
/// let data = [10.0, 20.0, 30.0, 40.0];
/// assert_eq!(quantile_of_sorted(&data, 0.0), 10.0);
/// assert_eq!(quantile_of_sorted(&data, 0.5), 25.0);
/// assert_eq!(quantile_of_sorted(&data, 1.0), 40.0);
/// ```
// floor/ceil of `p * (n-1)` fit in usize by construction (p ≤ 1).
#[allow(clippy::cast_possible_truncation)]
pub fn quantile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&p), "quantile probability {p} outside [0, 1]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Sorts a copy of `samples` and estimates the `p`-quantile.
///
/// Prefer [`quantile_of_sorted`] inside loops to avoid repeated sorting.
///
/// # Panics
///
/// Panics if `samples` is empty or `p` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_of_sorted(&sorted, p)
}

/// Estimates several quantiles of one sample with a single sort.
///
/// # Panics
///
/// Panics if `samples` is empty or any probability is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use treadmill_stats::quantile::quantiles;
///
/// let data: Vec<f64> = (1..=100).map(f64::from).collect();
/// let qs = quantiles(&data, &[0.5, 0.99]);
/// assert!((qs[0] - 50.5).abs() < 1e-9);
/// assert!((qs[1] - 99.01).abs() < 1e-9);
/// ```
pub fn quantiles(samples: &[f64], ps: &[f64]) -> Vec<f64> {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    ps.iter().map(|&p| quantile_of_sorted(&sorted, p)).collect()
}

/// The empirical CDF evaluated at `x`: the fraction of samples `<= x`.
///
/// `sorted` must be sorted ascending.
///
/// # Examples
///
/// ```
/// use treadmill_stats::quantile::ecdf_of_sorted;
///
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(ecdf_of_sorted(&data, 2.5), 0.5);
/// assert_eq!(ecdf_of_sorted(&data, 0.0), 0.0);
/// assert_eq!(ecdf_of_sorted(&data, 9.0), 1.0);
/// ```
pub fn ecdf_of_sorted(sorted: &[f64], x: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let count = sorted.partition_point(|&v| v <= x);
    count as f64 / sorted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_element() {
        assert_eq!(quantile_of_sorted(&[42.0], 0.0), 42.0);
        assert_eq!(quantile_of_sorted(&[42.0], 0.99), 42.0);
    }

    #[test]
    fn interpolates_between_order_statistics() {
        let data = [0.0, 10.0];
        assert_eq!(quantile_of_sorted(&data, 0.25), 2.5);
        assert_eq!(quantile_of_sorted(&data, 0.75), 7.5);
    }

    #[test]
    fn unsorted_helper_sorts() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    fn matches_known_percentiles() {
        let data: Vec<f64> = (1..=1000).map(f64::from).collect();
        assert!((quantile(&data, 0.95) - 950.05).abs() < 1e-9);
        assert!((quantile(&data, 0.999) - 999.001).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        quantile_of_sorted(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_p_panics() {
        quantile_of_sorted(&[1.0], 1.5);
    }

    #[test]
    fn ecdf_counts_inclusive() {
        let data = [1.0, 1.0, 2.0];
        assert!((ecdf_of_sorted(&data, 1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ecdf_of_sorted(&[], 5.0), 0.0);
    }

    proptest! {
        #[test]
        fn quantile_is_monotone_in_p(
            mut data in prop::collection::vec(-1e6f64..1e6, 1..100),
            p1 in 0.0f64..1.0,
            p2 in 0.0f64..1.0,
        ) {
            data.sort_by(f64::total_cmp);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(quantile_of_sorted(&data, lo) <= quantile_of_sorted(&data, hi) + 1e-9);
        }

        #[test]
        fn quantile_within_range(
            mut data in prop::collection::vec(-1e6f64..1e6, 1..100),
            p in 0.0f64..=1.0,
        ) {
            data.sort_by(f64::total_cmp);
            let q = quantile_of_sorted(&data, p);
            prop_assert!(q >= data[0] - 1e-9);
            prop_assert!(q <= data[data.len() - 1] + 1e-9);
        }

        #[test]
        fn ecdf_and_quantile_are_near_inverse(
            mut data in prop::collection::vec(0.0f64..1e3, 10..200),
            p in 0.05f64..0.95,
        ) {
            data.sort_by(f64::total_cmp);
            let q = quantile_of_sorted(&data, p);
            let back = ecdf_of_sorted(&data, q);
            // ECDF jumps in 1/n steps, so allow one-step slack.
            prop_assert!((back - p).abs() <= 1.5 / data.len() as f64 + 1e-9);
        }
    }
}
