//! A log-bucketed histogram with bounded relative error.
//!
//! The third aggregation backend (besides the paper's adaptive
//! histogram and the P² estimator): HdrHistogram-style buckets whose
//! width grows geometrically, so any value in `[min, max]` is recorded
//! with a guaranteed relative error and **no calibration phase**. The
//! trade-off versus the adaptive histogram is a fixed (coarse at the
//! top) resolution instead of resolution concentrated where the data
//! actually lives.

/// A histogram with geometrically sized buckets over `[min, max)`.
///
/// # Examples
///
/// ```
/// use treadmill_stats::loghist::LogHistogram;
///
/// let mut hist = LogHistogram::new(1.0, 1e7, 0.01);
/// for i in 1..=100_000u32 {
///     hist.record(f64::from(i) / 10.0);
/// }
/// let p99 = hist.quantile(0.99);
/// assert!((p99 / 9_900.0 - 1.0).abs() < 0.02, "p99 {p99}");
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    min: f64,
    log_min: f64,
    log_ratio: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
    sum: f64,
    max_seen: f64,
}

impl LogHistogram {
    /// Creates a histogram covering `[min, max)` with per-bucket
    /// relative width `precision` (e.g. `0.01` = 1% buckets).
    ///
    /// # Panics
    ///
    /// Panics if `min <= 0`, `max <= min`, or `precision` outside
    /// `(0, 1)`.
    // Bucket count comes from a ceil()ed log ratio of validated
    // positive bounds; truncation to usize is the intent.
    #[allow(clippy::cast_possible_truncation)]
    pub fn new(min: f64, max: f64, precision: f64) -> Self {
        assert!(min > 0.0, "log histogram needs a positive minimum");
        assert!(max > min, "max must exceed min");
        assert!(precision > 0.0 && precision < 1.0, "precision outside (0, 1)");
        let ratio = 1.0 + precision;
        let buckets = ((max / min).ln() / ratio.ln()).ceil() as usize + 1;
        LogHistogram {
            min,
            log_min: min.ln(),
            log_ratio: ratio.ln(),
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
            sum: 0.0,
            max_seen: f64::NEG_INFINITY,
        }
    }

    // Log-bucket index truncates toward zero; out-of-range indices are
    // rejected by the bounds check below.
    #[allow(clippy::cast_possible_truncation)]
    fn bucket_of(&self, value: f64) -> Option<usize> {
        if value < self.min {
            return None;
        }
        let idx = ((value.ln() - self.log_min) / self.log_ratio) as usize;
        if idx >= self.counts.len() {
            None
        } else {
            Some(idx)
        }
    }

    fn bucket_upper(&self, idx: usize) -> f64 {
        (self.log_min + self.log_ratio * (idx as f64 + 1.0)).exp()
    }

    /// Records one value.
    pub fn record(&mut self, value: f64) {
        debug_assert!(value.is_finite());
        self.total += 1;
        self.sum += value;
        self.max_seen = self.max_seen.max(value);
        match self.bucket_of(value) {
            Some(idx) => self.counts[idx] += 1,
            None if value < self.min => self.underflow += 1,
            None => self.overflow += 1,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Values recorded above the configured range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Estimates the `p`-quantile with the configured relative error.
    ///
    /// # Panics
    ///
    /// Panics if empty or `p` outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(self.total > 0, "quantile of empty histogram");
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let target = p * self.total as f64;
        let mut cumulative = self.underflow as f64;
        if cumulative >= target && self.underflow > 0 {
            return self.min;
        }
        for (idx, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            cumulative += count as f64;
            if cumulative >= target {
                return self.bucket_upper(idx);
            }
        }
        self.max_seen
    }

    /// Captures the full histogram state for checkpointing. Geometry
    /// and counters round-trip bit-exactly through
    /// [`LogHistogram::from_state`].
    pub fn state(&self) -> LogHistogramState {
        LogHistogramState {
            min: self.min,
            log_min: self.log_min,
            log_ratio: self.log_ratio,
            counts: self.counts.clone(),
            underflow: self.underflow,
            overflow: self.overflow,
            total: self.total,
            sum: self.sum,
            max_seen: self.max_seen,
        }
    }

    /// Rebuilds a histogram from a checkpointed
    /// [`LogHistogramState`].
    ///
    /// # Panics
    ///
    /// Panics on nonsensical geometry (`min <= 0` or a non-positive
    /// bucket ratio).
    pub fn from_state(state: LogHistogramState) -> Self {
        assert!(state.min > 0.0, "log histogram needs a positive minimum");
        assert!(state.log_ratio > 0.0, "bucket ratio must be positive");
        LogHistogram {
            min: state.min,
            log_min: state.log_min,
            log_ratio: state.log_ratio,
            counts: state.counts,
            underflow: state.underflow,
            overflow: state.overflow,
            total: state.total,
            sum: state.sum,
            max_seen: state.max_seen,
        }
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if geometries differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "geometry mismatch");
        assert!((self.min - other.min).abs() < 1e-12, "geometry mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

/// A [`LogHistogram`]'s full state, captured for checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogramState {
    /// Lower bound of the covered range.
    pub min: f64,
    /// `ln(min)`, cached.
    pub log_min: f64,
    /// `ln(1 + precision)`, cached.
    pub log_ratio: f64,
    /// Per-bucket counts.
    pub counts: Vec<u64>,
    /// Values below the range.
    pub underflow: u64,
    /// Values above the range.
    pub overflow: u64,
    /// Total recorded values.
    pub total: u64,
    /// Running sum (for the exact mean).
    pub sum: f64,
    /// Largest value observed.
    pub max_seen: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::sample_exponential;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn state_round_trip_is_bit_identical() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut original = LogHistogram::new(1.0, 1e6, 0.01);
        for _ in 0..10_000 {
            original.record(5.0 + sample_exponential(&mut rng, 120.0));
        }
        let mut resumed = LogHistogram::from_state(original.state());
        for _ in 0..10_000 {
            let v = 5.0 + sample_exponential(&mut rng, 120.0);
            original.record(v);
            resumed.record(v);
        }
        assert_eq!(original.count(), resumed.count());
        assert_eq!(original.mean().to_bits(), resumed.mean().to_bits());
        for &p in &[0.5, 0.9, 0.99, 0.999] {
            assert_eq!(
                original.quantile(p).to_bits(),
                resumed.quantile(p).to_bits(),
                "p{p} drifted after restore"
            );
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut hist = LogHistogram::new(1.0, 1e6, 0.01);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut samples = Vec::new();
        for _ in 0..100_000 {
            let v = 10.0 + sample_exponential(&mut rng, 200.0);
            hist.record(v);
            samples.push(v);
        }
        for &p in &[0.5, 0.9, 0.99, 0.999] {
            let truth = crate::quantile::quantile(&samples, p);
            let estimate = hist.quantile(p);
            assert!(
                (estimate / truth - 1.0).abs() < 0.02,
                "p{p}: {estimate} vs {truth}"
            );
        }
    }

    #[test]
    fn no_calibration_needed_for_shifting_distributions() {
        // The adaptive histogram has to re-bin when the distribution
        // shifts; the log histogram covers the whole range upfront.
        let mut hist = LogHistogram::new(1.0, 1e7, 0.01);
        for i in 0..1_000 {
            hist.record(100.0 + f64::from(i % 10));
        }
        for i in 0..100_000 {
            hist.record(100_000.0 + f64::from(i % 1_000));
        }
        let p90 = hist.quantile(0.9);
        assert!(p90 > 90_000.0, "p90 {p90} must reflect the shifted mass");
        assert_eq!(hist.overflow(), 0);
    }

    #[test]
    fn out_of_range_values_counted() {
        let mut hist = LogHistogram::new(10.0, 100.0, 0.1);
        hist.record(1.0);
        hist.record(1_000.0);
        hist.record(50.0);
        assert_eq!(hist.count(), 3);
        assert_eq!(hist.overflow(), 1);
        // p=1.0 returns the exact max even when it overflowed.
        assert_eq!(hist.quantile(1.0), 1_000.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::new(1.0, 1e4, 0.05);
        let mut b = LogHistogram::new(1.0, 1e4, 0.05);
        for i in 1..=100 {
            a.record(f64::from(i));
            b.record(f64::from(i * 10));
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        let p50 = a.quantile(0.5);
        assert!(p50 > 80.0 && p50 < 130.0, "merged median {p50}");
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_rejects_different_geometry() {
        let mut a = LogHistogram::new(1.0, 1e4, 0.05);
        let b = LogHistogram::new(1.0, 1e5, 0.05);
        a.merge(&b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn quantiles_monotone(
            data in prop::collection::vec(1.0f64..1e5, 10..500),
            p1 in 0.0f64..1.0,
            p2 in 0.0f64..1.0,
        ) {
            let mut hist = LogHistogram::new(0.5, 2e5, 0.02);
            for &v in &data {
                hist.record(v);
            }
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(hist.quantile(lo) <= hist.quantile(hi) + 1e-9);
        }

        #[test]
        fn count_conserved(data in prop::collection::vec(0.1f64..1e6, 0..300)) {
            let mut hist = LogHistogram::new(1.0, 1e4, 0.05);
            for &v in &data {
                hist.record(v);
            }
            prop_assert_eq!(hist.count(), data.len() as u64);
        }
    }
}
