//! Statistics substrate for the Treadmill reproduction.
//!
//! The paper's methodology rests on a handful of statistical tools, all
//! implemented here from scratch:
//!
//! * [`AdaptiveHistogram`] — the calibrated, re-binnable latency histogram
//!   Treadmill uses for online aggregation (§III-A, *Statistical
//!   aggregation*), plus [`StaticHistogram`] exhibiting the static-bin
//!   pitfall of prior load testers (§II-B).
//! * [`StreamingStats`] — Welford-style streaming moments.
//! * [`quantile`] — empirical quantile estimation.
//! * [`distribution`] — the normal CDF/quantile, samplers for the
//!   exponential / lognormal / Pareto families used by workload models.
//! * [`linalg`] — dense matrices and LU / least-squares solvers.
//! * [`regression`] — quantile regression (pinball loss, exact saturated
//!   solver, smoothed IRLS, simplex LP), within-cell bootstrap inference,
//!   the paper's pseudo-R² (Eq. 2), and OLS/ANOVA for comparison.
//!
//! # Examples
//!
//! ```
//! use treadmill_stats::quantile::quantile_of_sorted;
//!
//! let mut samples: Vec<f64> = (1..=100).map(f64::from).collect();
//! samples.sort_by(f64::total_cmp);
//! let p99 = quantile_of_sorted(&samples, 0.99);
//! assert!((p99 - 99.01).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
// Unit tests unwrap freely and assert exact float equality: bit-exact
// reproducibility is the property under test. Library code is held to
// the workspace lint table (see DESIGN.md, "Static analysis").
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)
)]
#![warn(missing_docs)]

pub mod ci;
pub mod compare;
pub mod distribution;
pub mod histogram;
pub mod linalg;
pub mod loghist;
pub mod p2;
pub mod quantile;
pub mod regression;
pub mod streaming;
pub mod summary;

pub use histogram::{AdaptiveHistogram, HistogramConfig, StaticHistogram};
pub use loghist::{LogHistogram, LogHistogramState};
pub use p2::{P2Quantile, P2State};
pub use streaming::{StreamingState, StreamingStats};
pub use summary::LatencySummary;
