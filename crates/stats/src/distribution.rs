//! Probability distributions: the standard normal (for inference) and
//! the samplers used by workload and service-time models.

use rand::Rng;

/// The error function, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (|error| < 1.5e-7, ample for p-values).
///
/// # Examples
///
/// ```
/// use treadmill_stats::distribution::erf;
///
/// assert!((erf(0.0)).abs() < 1e-8);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function.
///
/// # Examples
///
/// ```
/// use treadmill_stats::distribution::normal_cdf;
///
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal quantile function (inverse CDF), via the
/// Acklam/Beasley–Springer–Moro rational approximation.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use treadmill_stats::distribution::normal_quantile;
///
/// assert!(normal_quantile(0.5).abs() < 1e-8);
/// assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal quantile of p={p} outside (0, 1)");
    // Coefficients from Peter Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Two-sided p-value for a z statistic under the standard normal null.
///
/// # Examples
///
/// ```
/// use treadmill_stats::distribution::two_sided_p_value;
///
/// assert!((two_sided_p_value(0.0) - 1.0).abs() < 1e-8);
/// assert!(two_sided_p_value(5.0) < 1e-5);
/// ```
pub fn two_sided_p_value(z: f64) -> f64 {
    (2.0 * (1.0 - normal_cdf(z.abs()))).clamp(0.0, 1.0)
}

/// Draws from an exponential distribution with the given mean.
///
/// The paper generates request inter-arrivals "at an exponentially
/// distributed inter-arrival rate, which is consistent with the
/// measurements obtained from Google production clusters" (§III-A).
///
/// # Panics
///
/// Panics if `mean` is not positive.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Draws from a lognormal distribution parameterised by the mean and
/// standard deviation of the underlying normal.
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * sample_standard_normal(rng)).exp()
}

/// Draws from a standard normal via Box–Muller.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws from a Pareto distribution with scale `x_min` and shape `alpha`.
///
/// Used for the heavy-tailed component of value-size distributions
/// (Atikoglu et al. report heavy-tailed Memcached value sizes).
///
/// # Panics
///
/// Panics if `x_min` or `alpha` is not positive.
pub fn sample_pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    assert!(x_min > 0.0 && alpha > 0.0, "pareto parameters must be positive");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    x_min / u.powf(1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::StreamingStats;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn erf_symmetry_and_limits() {
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-9);
        assert!(erf(5.0) > 0.999999);
        assert!(erf(-5.0) < -0.999999);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(-1.0) - 0.158655).abs() < 1e-4);
        assert!((normal_cdf(2.326) - 0.99).abs() < 1e-3);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-4, "p={p}, z={z}");
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_bounds() {
        normal_quantile(0.0);
    }

    #[test]
    fn p_values_behave() {
        assert!(two_sided_p_value(1.96) < 0.051);
        assert!(two_sided_p_value(1.96) > 0.049);
        assert!(two_sided_p_value(0.5) > 0.6);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let stats: StreamingStats =
            (0..100_000).map(|_| sample_exponential(&mut rng, 10.0)).collect();
        assert!((stats.mean() - 10.0).abs() < 0.15, "mean {}", stats.mean());
        // Exponential: variance == mean^2.
        assert!((stats.sample_variance() - 100.0).abs() < 5.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SmallRng::seed_from_u64(2);
        let stats: StreamingStats =
            (0..100_000).map(|_| sample_standard_normal(&mut rng)).collect();
        assert!(stats.mean().abs() < 0.02);
        assert!((stats.sample_variance() - 1.0).abs() < 0.03);
    }

    #[test]
    fn lognormal_median() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut samples: Vec<f64> =
            (0..50_000).map(|_| sample_lognormal(&mut rng, 2.0, 0.5)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median - 2.0f64.exp()).abs() < 0.2, "median {median}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1_000 {
            assert!(sample_pareto(&mut rng, 3.0, 2.0) >= 3.0);
        }
    }

    #[test]
    fn pareto_tail_is_heavy() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 100_000;
        let exceed = (0..n)
            .filter(|_| sample_pareto(&mut rng, 1.0, 1.5) > 10.0)
            .count();
        // P(X > 10) = 10^-1.5 ≈ 0.0316.
        let frac = exceed as f64 / n as f64;
        assert!((frac - 0.0316).abs() < 0.005, "tail fraction {frac}");
    }
}
