//! Minimal dense linear algebra: matrices, LU factorisation with partial
//! pivoting, and least squares via normal equations.
//!
//! Sized for the regression problems in this repository (design matrices
//! with at most a few dozen columns); no external BLAS.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Errors from linear solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The system matrix is singular (or numerically so).
    Singular,
    /// Dimensions of the operands do not match.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular"),
            SolveError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use treadmill_stats::linalg::Matrix;
///
/// let identity = Matrix::identity(3);
/// let b = vec![1.0, 2.0, 3.0];
/// let x = identity.solve(&b)?;
/// assert_eq!(x, b);
/// # Ok::<(), treadmill_stats::linalg::SolveError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "mul_vec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix–matrix product.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "mul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Solves `self * x = b` for square `self` by LU factorisation with
    /// partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] if the matrix is (numerically)
    /// singular, and [`SolveError::DimensionMismatch`] if `b` has the
    /// wrong length or the matrix is not square.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if self.rows != self.cols {
            return Err(SolveError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(SolveError::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut x = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Pivot.
            let mut pivot_row = col;
            let mut pivot_val = lu[perm[col] * n + col].abs();
            for (r, &pr) in perm.iter().enumerate().skip(col + 1) {
                let v = lu[pr * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(SolveError::Singular);
            }
            perm.swap(col, pivot_row);
            let p = perm[col];
            let diag = lu[p * n + col];
            for &r in &perm[col + 1..] {
                let factor = lu[r * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                lu[r * n + col] = factor;
                for j in col + 1..n {
                    lu[r * n + j] -= factor * lu[p * n + j];
                }
            }
        }

        // Forward substitution on permuted b.
        let mut y = vec![0.0; n];
        for (i, &p) in perm.iter().enumerate() {
            let mut sum = x[p];
            for (j, &pj) in perm.iter().enumerate().take(i) {
                let _ = pj;
                sum -= lu[p * n + j] * y[j];
            }
            y[i] = sum;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let p = perm[i];
            let mut sum = y[i];
            for j in i + 1..n {
                sum -= lu[p * n + j] * x[j];
            }
            x[i] = sum / lu[p * n + i];
        }
        Ok(x)
    }

    /// Solves the least-squares problem `min ||self * x - b||²` via the
    /// normal equations (adequate for the well-conditioned design
    /// matrices used here).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] if `XᵀX` is singular and
    /// [`SolveError::DimensionMismatch`] on shape errors.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if b.len() != self.rows {
            return Err(SolveError::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        let xt = self.transpose();
        let xtx = xt.mul(self);
        let xtb = xt.mul_vec(b);
        xtx.solve(&xtb)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal: fails without partial pivoting.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn singular_is_detected() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(SolveError::Singular));
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SolveError::DimensionMismatch { .. })
        ));
        let b = Matrix::identity(2);
        assert!(matches!(
            b.solve(&[1.0]),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_and_mul() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at[(0, 1)], 4.0);
        let product = a.mul(&at); // 2x2
        assert_eq!(product[(0, 0)], 14.0);
        assert_eq!(product[(1, 1)], 77.0);
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 2 + 3x with symmetric noise-free points.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let mut design = Matrix::zeros(xs.len(), 2);
        let mut y = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = x;
            y.push(2.0 + 3.0 * x);
        }
        let beta = design.solve_least_squares(&y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!SolveError::Singular.to_string().is_empty());
        let e = SolveError::DimensionMismatch {
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("2"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn solve_then_multiply_round_trips(
            diag in prop::collection::vec(1.0f64..10.0, 2..6),
            off in -0.4f64..0.4,
            b in prop::collection::vec(-10.0f64..10.0, 6),
        ) {
            // Diagonally dominant => well conditioned.
            let n = diag.len();
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = if i == j { diag[i] } else { off };
                }
            }
            let rhs = &b[..n];
            let x = a.solve(rhs).unwrap();
            let back = a.mul_vec(&x);
            for i in 0..n {
                prop_assert!((back[i] - rhs[i]).abs() < 1e-6);
            }
        }

        #[test]
        fn transpose_is_involution(
            rows in 1usize..5,
            cols in 1usize..5,
            seed in 0u64..1000,
        ) {
            let data: Vec<f64> = (0..rows * cols)
                .map(|i| ((seed + i as u64) % 17) as f64 - 8.0)
                .collect();
            let m = Matrix::from_rows(rows, cols, data);
            prop_assert_eq!(m.transpose().transpose(), m);
        }
    }
}
