//! Confidence intervals for means and quantiles.

use crate::distribution::{normal_cdf, normal_quantile};
use crate::streaming::StreamingStats;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Half-width relative to the point estimate (`NaN` if the estimate
    /// is zero).
    pub fn relative_half_width(&self) -> f64 {
        self.half_width() / self.estimate.abs()
    }

    /// True if `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// Normal-approximation confidence interval for a mean.
///
/// # Panics
///
/// Panics if `level` is outside `(0, 1)` or the accumulator is empty.
///
/// # Examples
///
/// ```
/// use treadmill_stats::ci::mean_confidence_interval;
/// use treadmill_stats::StreamingStats;
///
/// let stats: StreamingStats = (0..1000).map(|i| (i % 10) as f64).collect();
/// let ci = mean_confidence_interval(&stats, 0.95);
/// assert!(ci.contains(4.5));
/// ```
pub fn mean_confidence_interval(stats: &StreamingStats, level: f64) -> ConfidenceInterval {
    assert!(level > 0.0 && level < 1.0, "confidence level outside (0, 1)");
    assert!(stats.count() > 0, "confidence interval of empty sample");
    let z = normal_quantile(0.5 + level / 2.0);
    let half = z * stats.standard_error();
    ConfidenceInterval {
        estimate: stats.mean(),
        lower: stats.mean() - half,
        upper: stats.mean() + half,
        level,
    }
}

/// Distribution-free confidence interval for the `p`-quantile of a
/// **sorted** sample, based on the binomial distribution of order
/// statistics (normal approximation to the binomial rank).
///
/// # Panics
///
/// Panics if `sorted` is empty, `p` outside `(0, 1)`, or `level` outside
/// `(0, 1)`.
// Rank arithmetic truncates deliberately: ranks are clamped into
// [0, n-1] right after the cast.
#[allow(clippy::cast_possible_truncation)]
pub fn quantile_confidence_interval(
    sorted: &[f64],
    p: f64,
    level: f64,
) -> ConfidenceInterval {
    assert!(!sorted.is_empty(), "confidence interval of empty sample");
    assert!(p > 0.0 && p < 1.0, "quantile probability outside (0, 1)");
    assert!(level > 0.0 && level < 1.0, "confidence level outside (0, 1)");
    let n = sorted.len() as f64;
    let z = normal_quantile(0.5 + level / 2.0);
    let se = (n * p * (1.0 - p)).sqrt();
    let lower_rank = ((n * p - z * se).floor().max(0.0)) as usize;
    let upper_rank = ((n * p + z * se).ceil() as usize).min(sorted.len() - 1);
    let estimate = crate::quantile::quantile_of_sorted(sorted, p);
    ConfidenceInterval {
        estimate,
        lower: sorted[lower_rank.min(sorted.len() - 1)],
        upper: sorted[upper_rank],
        level,
    }
}

/// The achieved coverage probability of the order-statistic interval
/// `[lower_rank, upper_rank]` for the `p`-quantile of an `n`-sample
/// (normal approximation). Exposed for interval-design diagnostics.
pub fn order_statistic_coverage(n: usize, p: f64, lower_rank: usize, upper_rank: usize) -> f64 {
    let n = n as f64;
    let mean = n * p;
    let sd = (n * p * (1.0 - p)).sqrt();
    if sd == 0.0 {
        return 1.0;
    }
    let hi = (upper_rank as f64 + 0.5 - mean) / sd;
    let lo = (lower_rank as f64 - 0.5 - mean) / sd;
    (normal_cdf(hi) - normal_cdf(lo)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::sample_exponential;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mean_ci_shrinks_with_samples() {
        let small: StreamingStats = (0..100).map(|i| (i % 7) as f64).collect();
        let large: StreamingStats = (0..10_000).map(|i| (i % 7) as f64).collect();
        let ci_small = mean_confidence_interval(&small, 0.95);
        let ci_large = mean_confidence_interval(&large, 0.95);
        assert!(ci_large.half_width() < ci_small.half_width());
    }

    #[test]
    fn mean_ci_widens_with_level() {
        let stats: StreamingStats = (0..1000).map(|i| (i % 13) as f64).collect();
        let ci90 = mean_confidence_interval(&stats, 0.90);
        let ci99 = mean_confidence_interval(&stats, 0.99);
        assert!(ci99.half_width() > ci90.half_width());
        assert_eq!(ci90.estimate, ci99.estimate);
    }

    #[test]
    fn quantile_ci_brackets_truth() {
        // Exponential(10): true p90 = 10 ln 10 ≈ 23.03.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut hits = 0;
        let trials = 50;
        for _ in 0..trials {
            let mut data: Vec<f64> =
                (0..2_000).map(|_| sample_exponential(&mut rng, 10.0)).collect();
            data.sort_by(f64::total_cmp);
            let ci = quantile_confidence_interval(&data, 0.9, 0.95);
            if ci.contains(10.0 * 10.0f64.ln()) {
                hits += 1;
            }
        }
        // Should cover ~95% of the time; allow slack for 50 trials.
        assert!(hits >= 42, "coverage {hits}/{trials}");
    }

    #[test]
    fn coverage_increases_with_interval_width() {
        let narrow = order_statistic_coverage(1000, 0.9, 895, 905);
        let wide = order_statistic_coverage(1000, 0.9, 870, 930);
        assert!(wide > narrow);
        assert!(wide <= 1.0 && narrow >= 0.0);
    }

    #[test]
    fn relative_half_width() {
        let ci = ConfidenceInterval {
            estimate: 100.0,
            lower: 90.0,
            upper: 110.0,
            level: 0.95,
        };
        assert!((ci.relative_half_width() - 0.1).abs() < 1e-12);
        assert!(ci.contains(100.0));
        assert!(!ci.contains(89.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        quantile_confidence_interval(&[], 0.5, 0.95);
    }
}
