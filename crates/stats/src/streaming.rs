//! Streaming moments via Welford's online algorithm.

/// Numerically stable streaming mean / variance / extrema.
///
/// # Examples
///
/// ```
/// use treadmill_stats::StreamingStats;
///
/// let mut stats = StreamingStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     stats.record(x);
/// }
/// assert_eq!(stats.count(), 8);
/// assert!((stats.mean() - 5.0).abs() < 1e-12);
/// assert!((stats.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`), or 0 if empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`), or 0 if fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_stddev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation, or `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Captures the full accumulator state for checkpointing. Feeding
    /// the result to [`StreamingStats::from_state`] yields an
    /// accumulator whose every subsequent [`StreamingStats::record`]
    /// and statistic is bit-identical to this one's.
    pub fn state(&self) -> StreamingState {
        StreamingState {
            count: self.count,
            mean: self.mean,
            m2: self.m2,
            min: self.min,
            max: self.max,
        }
    }

    /// Rebuilds an accumulator from a checkpointed [`StreamingState`].
    pub fn from_state(state: StreamingState) -> Self {
        StreamingStats {
            count: state.count,
            mean: state.mean,
            m2: state.m2,
            min: state.min,
            max: state.max,
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A [`StreamingStats`] accumulator's full state, captured for
/// checkpointing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingState {
    /// Number of observations.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    /// Sum of squared deviations (Welford's M2).
    pub m2: f64,
    /// Smallest observation, `+inf` if empty.
    pub min: f64,
    /// Largest observation, `-inf` if empty.
    pub max: f64,
}

impl FromIterator<f64> for StreamingStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut stats = StreamingStats::new();
        for x in iter {
            stats.record(x);
        }
        stats
    }
}

impl Extend<f64> for StreamingStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_well_defined() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s: StreamingStats = [3.5].into_iter().collect();
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn merge_matches_combined_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() * 10.0 + 5.0).collect();
        let combined: StreamingStats = data.iter().copied().collect();
        let mut left: StreamingStats = data[..37].iter().copied().collect();
        let right: StreamingStats = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), combined.count());
        assert!((left.mean() - combined.mean()).abs() < 1e-9);
        assert!((left.sample_variance() - combined.sample_variance()).abs() < 1e-9);
        assert_eq!(left.min(), combined.min());
        assert_eq!(left.max(), combined.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: StreamingStats = [1.0, 2.0].into_iter().collect();
        let before = s.clone();
        s.merge(&StreamingStats::new());
        assert_eq!(s, before);
        let mut empty = StreamingStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let mut original = StreamingStats::new();
        for i in 0..7_777 {
            original.record((f64::from(i) * 0.31).sin() * 40.0 + 3.0);
        }
        let mut resumed = StreamingStats::from_state(original.state());
        assert_eq!(original, resumed);
        for i in 0..7_777 {
            let v = (f64::from(i) * 0.77).cos() * 12.0 - 1.0;
            original.record(v);
            resumed.record(v);
        }
        assert_eq!(original.count(), resumed.count());
        assert_eq!(original.mean().to_bits(), resumed.mean().to_bits());
        assert_eq!(original.m2.to_bits(), resumed.m2.to_bits());
        assert_eq!(original.min().to_bits(), resumed.min().to_bits());
        assert_eq!(original.max().to_bits(), resumed.max().to_bits());
    }

    #[test]
    fn extend_appends() {
        let mut s = StreamingStats::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn mean_is_bounded_by_extrema(data in prop::collection::vec(-1e6f64..1e6, 1..200)) {
            let s: StreamingStats = data.iter().copied().collect();
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        #[test]
        fn variance_is_nonnegative(data in prop::collection::vec(-1e6f64..1e6, 0..200)) {
            let s: StreamingStats = data.iter().copied().collect();
            prop_assert!(s.population_variance() >= -1e-9);
            prop_assert!(s.sample_variance() >= -1e-9);
        }

        #[test]
        fn merge_is_order_insensitive(
            a in prop::collection::vec(-1e3f64..1e3, 0..50),
            b in prop::collection::vec(-1e3f64..1e3, 0..50),
        ) {
            let sa: StreamingStats = a.iter().copied().collect();
            let sb: StreamingStats = b.iter().copied().collect();
            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
            prop_assert!((ab.m2 - ba.m2).abs() < 1e-6);
        }
    }
}
