//! Statistically sound comparison of two measurement campaigns.
//!
//! When an operator wants to know "did this change help?", comparing a
//! single run of each variant is exactly the hysteresis trap (§II-D).
//! The sound procedure compares the *distributions of per-run metrics*
//! using Welch's unequal-variance t-test, which this module provides,
//! along with a convenience verdict type used by the comparison CLI.

use crate::distribution::normal_cdf;
use crate::streaming::StreamingStats;

/// The result of a two-sample comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Mean of the first sample.
    pub mean_a: f64,
    /// Mean of the second sample.
    pub mean_b: f64,
    /// Difference `mean_b - mean_a`.
    pub difference: f64,
    /// Welch's t statistic.
    pub t_statistic: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub degrees_of_freedom: f64,
    /// Two-sided p-value (normal approximation to the t distribution;
    /// accurate for the ≥10-run campaigns the procedure prescribes).
    pub p_value: f64,
}

impl Comparison {
    /// True if the difference is significant at level `alpha`.
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    /// Relative change `(mean_b - mean_a) / mean_a`.
    pub fn relative_change(&self) -> f64 {
        self.difference / self.mean_a
    }
}

/// Welch's t-test on two per-run metric samples (e.g. each variant's
/// per-run p99s).
///
/// # Panics
///
/// Panics if either sample has fewer than two values.
///
/// # Examples
///
/// ```
/// use treadmill_stats::compare::welch_t_test;
///
/// let before = [100.0, 104.0, 98.0, 102.0, 101.0];
/// let after = [80.0, 82.0, 79.0, 81.0, 80.5];
/// let cmp = welch_t_test(&before, &after);
/// assert!(cmp.is_significant(0.01));
/// assert!(cmp.difference < -15.0);
/// ```
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Comparison {
    assert!(a.len() >= 2 && b.len() >= 2, "need at least two runs per side");
    let sa: StreamingStats = a.iter().copied().collect();
    let sb: StreamingStats = b.iter().copied().collect();
    let var_a = sa.sample_variance() / a.len() as f64;
    let var_b = sb.sample_variance() / b.len() as f64;
    let se = (var_a + var_b).sqrt();
    let difference = sb.mean() - sa.mean();
    let t = if se > 0.0 { difference / se } else { 0.0 };
    let df = if var_a + var_b > 0.0 {
        (var_a + var_b).powi(2)
            / (var_a.powi(2) / (a.len() as f64 - 1.0)
                + var_b.powi(2) / (b.len() as f64 - 1.0))
    } else {
        (a.len() + b.len()) as f64 - 2.0
    };
    // Normal approximation with a light small-sample correction: scale
    // the statistic toward zero as df shrinks (matches t-tail closely
    // for df >= 8).
    let correction = (df / (df + 1.2)).sqrt();
    let p_value = if se == 0.0 {
        if difference == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        (2.0 * (1.0 - normal_cdf((t * correction).abs()))).clamp(0.0, 1.0)
    };
    Comparison {
        mean_a: sa.mean(),
        mean_b: sb.mean(),
        difference,
        t_statistic: t,
        degrees_of_freedom: df,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::sample_standard_normal;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn detects_a_real_difference() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a: Vec<f64> = (0..20)
            .map(|_| 100.0 + sample_standard_normal(&mut rng) * 3.0)
            .collect();
        let b: Vec<f64> = (0..20)
            .map(|_| 90.0 + sample_standard_normal(&mut rng) * 3.0)
            .collect();
        let cmp = welch_t_test(&a, &b);
        assert!(cmp.is_significant(0.001), "p = {}", cmp.p_value);
        assert!((cmp.difference + 10.0).abs() < 3.0);
        assert!(cmp.relative_change() < -0.05);
    }

    #[test]
    fn null_difference_is_insignificant_most_of_the_time() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut rejections = 0;
        let trials = 200;
        for _ in 0..trials {
            let a: Vec<f64> = (0..10)
                .map(|_| 50.0 + sample_standard_normal(&mut rng) * 5.0)
                .collect();
            let b: Vec<f64> = (0..10)
                .map(|_| 50.0 + sample_standard_normal(&mut rng) * 5.0)
                .collect();
            if welch_t_test(&a, &b).is_significant(0.05) {
                rejections += 1;
            }
        }
        // Should reject ~5% of the time; allow generous slack.
        assert!(rejections < trials / 8, "false positives: {rejections}/{trials}");
    }

    #[test]
    fn unequal_variances_handled() {
        let a = [10.0, 10.1, 9.9, 10.0, 10.05, 9.95];
        let b = [20.0, 5.0, 35.0, 12.0, 28.0, 2.0];
        let cmp = welch_t_test(&a, &b);
        // Welch df should be pulled toward the noisy sample's df.
        assert!(cmp.degrees_of_freedom < 7.0, "df {}", cmp.degrees_of_freedom);
    }

    #[test]
    fn identical_samples_give_p_one() {
        let a = [5.0, 5.0, 5.0];
        let cmp = welch_t_test(&a, &a);
        assert_eq!(cmp.p_value, 1.0);
        assert_eq!(cmp.difference, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_run_rejected() {
        welch_t_test(&[1.0], &[2.0, 3.0]);
    }
}
