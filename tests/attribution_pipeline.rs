//! Integration of the attribution pipeline on the real simulator: the
//! fitted model must recover the physics we built into the substrate.

// Integration tests exercise the public API end-to-end: unwrap on
// already-validated setup and exact float comparison (bit-identity is
// the property under test) are the point here, not defects.
#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)]

use std::sync::Arc;

use treadmill::cluster::HardwareConfig;
use treadmill::inference::{
    attribute, average_factor_impacts, collect, model_pseudo_r_squared, CollectionPlan,
};
use treadmill::sim::SimDuration;
use treadmill::workloads::Memcached;

fn small_campaign(rps: f64, seed: u64) -> treadmill::inference::Dataset {
    let plan = CollectionPlan {
        runs_per_config: 3,
        samples_per_run: 3_000,
        clients: 4,
        duration: SimDuration::from_millis(150),
        warmup: SimDuration::from_millis(40),
        seed,
        threads: 8,
        ..CollectionPlan::new(Arc::new(Memcached::default()), rps)
    };
    collect(&plan)
}

#[test]
fn numa_interleave_hurts_the_tail_at_high_load() {
    let dataset = small_campaign(750_000.0, 21);
    let model = attribute(&dataset, 0.99, 100, 21);
    let numa = model.term("numa").expect("numa term");
    assert!(
        numa.estimate > 5.0,
        "interleave must raise p99 (Finding 6): {:+.1}us",
        numa.estimate
    );
    // And the recommended config keeps NUMA local.
    assert!(!model.best_config().numa.is_high());
}

#[test]
fn dvfs_performance_helps_at_low_load() {
    let dataset = small_campaign(100_000.0, 22);
    let model = attribute(&dataset, 0.9, 100, 22);
    let impacts = average_factor_impacts(&model);
    let dvfs = impacts.iter().find(|i| i.factor == "dvfs").unwrap();
    assert!(
        dvfs.average_impact_us < -3.0,
        "performance governor must cut low-load latency (Finding 3): {:+.1}us",
        dvfs.average_impact_us
    );
}

#[test]
fn model_explains_most_quantile_variation() {
    let dataset = small_campaign(750_000.0, 23);
    let model = attribute(&dataset, 0.95, 50, 23);
    let r2 = model_pseudo_r_squared(&dataset, &model);
    assert!(r2 > 0.5, "pseudo-R2 = {r2}");
}

#[test]
fn predictions_match_cell_observations() {
    let dataset = small_campaign(750_000.0, 24);
    let model = attribute(&dataset, 0.5, 20, 24);
    // The saturated model interpolates the per-cell fitted quantiles;
    // its per-config predictions must stay inside each cell's observed
    // per-run range.
    for (i, cell) in dataset.cells.iter().enumerate() {
        let cfg = HardwareConfig::from_index(i);
        let pred = model.predict(&cfg);
        let runs = treadmill::stats::regression::per_run_quantiles(cell, 0.5);
        let lo = runs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = runs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            pred >= lo - 1e-6 && pred <= hi + 1e-6,
            "config {i}: prediction {pred} outside observed [{lo}, {hi}]"
        );
    }
}
