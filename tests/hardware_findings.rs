//! Integration tests pinning the paper's numbered findings (§V) as
//! executable assertions against the simulator.

// Integration tests exercise the public API end-to-end: unwrap on
// already-validated setup and exact float comparison (bit-identity is
// the property under test) are the point here, not defects.
#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)]

use std::sync::Arc;

use treadmill::cluster::HardwareConfig;
use treadmill::core::LoadTest;
use treadmill::sim::SimDuration;
use treadmill::workloads::{Mcrouter, Memcached, Workload};

fn p99(workload: Arc<dyn Workload>, rps: f64, config: usize, seed: u64) -> f64 {
    LoadTest::new(workload, rps)
        .clients(4)
        .hardware(HardwareConfig::from_index(config))
        .duration(SimDuration::from_millis(200))
        .warmup(SimDuration::from_millis(50))
        .seed(seed)
        .run(0)
        .aggregated
        .p99
}

fn mean_p99(workload: &Arc<dyn Workload>, rps: f64, config: usize) -> f64 {
    (0..3)
        .map(|s| p99(Arc::clone(workload), rps, config, 100 + s))
        .sum::<f64>()
        / 3.0
}

#[test]
fn finding_3_ondemand_hurts_at_low_load() {
    // dvfs is bit 2: config 0 = ondemand, config 4 = performance.
    let workload: Arc<dyn Workload> = Arc::new(Memcached::default());
    let ondemand = mean_p99(&workload, 100_000.0, 0);
    let performance = mean_p99(&workload, 100_000.0, 4);
    assert!(
        ondemand > performance * 1.1,
        "ondemand {ondemand} vs performance {performance} at low load"
    );
}

#[test]
fn finding_3_dvfs_immaterial_at_high_load() {
    let workload: Arc<dyn Workload> = Arc::new(Memcached::default());
    let ondemand = mean_p99(&workload, 750_000.0, 0);
    let performance = mean_p99(&workload, 750_000.0, 4);
    // Both governors run near max frequency when busy: within 10%.
    assert!(
        (ondemand / performance - 1.0).abs() < 0.10,
        "ondemand {ondemand} vs performance {performance} at high load"
    );
}

#[test]
fn finding_6_interleave_penalty_grows_with_load() {
    let workload: Arc<dyn Workload> = Arc::new(Memcached::default());
    // numa is bit 0.
    let low_penalty =
        mean_p99(&workload, 100_000.0, 1) - mean_p99(&workload, 100_000.0, 0);
    let high_penalty =
        mean_p99(&workload, 750_000.0, 1) - mean_p99(&workload, 750_000.0, 0);
    assert!(
        high_penalty > low_penalty + 5.0,
        "queueing must magnify the remote-access cost: low {low_penalty:.1}us, \
         high {high_penalty:.1}us"
    );
    assert!(high_penalty > 10.0);
}

#[test]
fn finding_8_mcrouter_gains_more_from_turbo_than_numa() {
    // mcrouter is CPU-dominated: turbo (bit 1) must matter more than
    // numa (bit 0), the opposite of memcached's high-load profile.
    let mcrouter: Arc<dyn Workload> = Arc::new(Mcrouter::default());
    let base = mean_p99(&mcrouter, 700_000.0, 0);
    let with_turbo = mean_p99(&mcrouter, 700_000.0, 2);
    let with_interleave = mean_p99(&mcrouter, 700_000.0, 1);
    let turbo_gain = base - with_turbo;
    let numa_cost = with_interleave - base;
    assert!(turbo_gain > 3.0, "turbo gain {turbo_gain:.1}us");
    assert!(
        turbo_gain > numa_cost,
        "turbo ({turbo_gain:.1}us) must outweigh numa ({numa_cost:.1}us) for mcrouter"
    );
}

#[test]
fn thermal_headroom_shrinks_turbo_benefit_at_high_load() {
    // Finding 8's mechanism: "the available thermal headroom is smaller
    // compared to low load". Compare turbo's relative p99 improvement.
    let workload: Arc<dyn Workload> = Arc::new(Mcrouter::default());
    let low_gain = 1.0 - mean_p99(&workload, 100_000.0, 2) / mean_p99(&workload, 100_000.0, 0);
    let high_gain =
        1.0 - mean_p99(&workload, 800_000.0, 2) / mean_p99(&workload, 800_000.0, 0);
    // Turbo helps in both regimes but the package runs hotter at high
    // load, so the relative gain must not grow.
    assert!(low_gain > 0.0, "turbo must help at low load: {low_gain:.3}");
    assert!(high_gain > -0.05, "turbo must not hurt at high load: {high_gain:.3}");
    assert!(
        high_gain < low_gain + 0.05,
        "high-load gain {high_gain:.3} should not exceed low-load gain {low_gain:.3}"
    );
}

#[test]
fn finding_2_quantile_estimator_variance_grows_with_quantile() {
    // Finding 2: "the variance of a quantile is inversely proportional
    // to the density" — with the same number of samples, the p99
    // estimate is intrinsically noisier than the median. Split one
    // run's samples into batches and compare estimator spread.
    let workload: Arc<dyn Workload> = Arc::new(Memcached::default());
    let report = LoadTest::new(workload, 700_000.0)
        .clients(4)
        .duration(SimDuration::from_millis(250))
        .warmup(SimDuration::from_millis(50))
        .seed(200)
        .run(0);
    let samples = report.pooled_latencies();
    let batches = 12;
    let batch_len = samples.len() / batches;
    assert!(batch_len > 1_000, "need sizeable batches, got {batch_len}");
    let cv_of = |p: f64| -> f64 {
        let estimates: Vec<f64> = (0..batches)
            .map(|b| {
                treadmill::stats::quantile::quantile(
                    &samples[b * batch_len..(b + 1) * batch_len],
                    p,
                )
            })
            .collect();
        let stats: treadmill::stats::StreamingStats = estimates.iter().copied().collect();
        stats.sample_stddev() / stats.mean()
    };
    let p50_cv = cv_of(0.50);
    let p99_cv = cv_of(0.99);
    assert!(
        p99_cv > p50_cv * 1.5,
        "p99 estimator must be noisier: p50 cv {p50_cv:.4}, p99 cv {p99_cv:.4}"
    );
}
