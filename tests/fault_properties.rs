//! Property tests for the fault-injection subsystem: determinism under
//! faults, the zero-cost guarantee when faults are configured but
//! inactive, and bounded retry budgets.

// Integration tests exercise the public API end-to-end: unwrap on
// already-validated setup and exact float comparison (bit-identity is
// the property under test) are the point here, not defects.
#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)]

use std::sync::Arc;

use proptest::prelude::*;
use treadmill::cluster::{
    ClientSpec, ClusterBuilder, FaultSpec, PoissonSource, RetryPolicy, RunResult,
};
use treadmill::sim::SimDuration;
use treadmill::workloads::Memcached;

fn base(seed: u64, rate: f64) -> ClusterBuilder {
    ClusterBuilder::new(Arc::new(Memcached::default()))
        .seed(seed)
        .client(
            ClientSpec::default(),
            Box::new(PoissonSource::new(rate, 16)),
        )
        .duration(SimDuration::from_millis(25))
}

fn latency_bits(result: &RunResult) -> Vec<u64> {
    result
        .all_records()
        .map(|r| r.user_latency_us().to_bits())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed + same fault plan ⇒ bit-identical latencies, the same
    /// fault counters and the same failure set.
    #[test]
    fn faulty_runs_are_bit_reproducible(
        seed in 0u64..1_000,
        loss in 0.0f64..0.2,
        stall_hz in 0.0f64..500.0,
    ) {
        let spec = FaultSpec {
            uplink_loss: loss,
            downlink_loss: loss / 2.0,
            stall_rate_hz: stall_hz,
            stall_us: 400.0,
            crash_rate_hz: 4.0,
            ..Default::default()
        };
        let policy = RetryPolicy {
            timeout_us: 1_500.0,
            max_retries: 2,
            hedge_after_us: 1_000.0,
            ..Default::default()
        };
        let a = base(seed, 200_000.0).faults(spec).retry_policy(policy).run();
        let b = base(seed, 200_000.0).faults(spec).retry_policy(policy).run();
        prop_assert_eq!(latency_bits(&a), latency_bits(&b));
        prop_assert_eq!(a.fault_summary, b.fault_summary);
        prop_assert_eq!(a.total_failures(), b.total_failures());
        prop_assert_eq!(a.events_executed, b.events_executed);
    }

    /// A zero-probability fault spec plus a disabled retry policy must
    /// be indistinguishable from the engine with no fault layer at all:
    /// no extra events, no extra RNG draws, identical bits.
    #[test]
    fn zero_probability_faults_change_nothing(
        seed in 0u64..1_000,
        rate in 50_000.0f64..400_000.0,
    ) {
        let plain = base(seed, rate).run();
        let gated = base(seed, rate)
            .faults(FaultSpec::default())
            .retry_policy(RetryPolicy::default())
            .run();
        prop_assert_eq!(latency_bits(&plain), latency_bits(&gated));
        prop_assert_eq!(plain.events_executed, gated.events_executed);
        prop_assert_eq!(plain.total_responses(), gated.total_responses());
        prop_assert!(gated.fault_summary.is_quiet());
        prop_assert_eq!(gated.total_failures(), 0);
    }

    /// The retry budget is a hard cap: no response or failure can record
    /// more than `max_retries + 1` attempts, and failures censor at a
    /// non-negative elapsed time.
    #[test]
    fn retry_budget_is_bounded(
        seed in 0u64..1_000,
        loss in 0.05f64..0.3,
        max_retries in 0u32..4,
    ) {
        let spec = FaultSpec { uplink_loss: loss, ..Default::default() };
        let policy = RetryPolicy {
            timeout_us: 1_000.0,
            max_retries,
            ..Default::default()
        };
        let result = base(seed, 150_000.0).faults(spec).retry_policy(policy).run();
        for record in result.all_records() {
            prop_assert!(record.attempts >= 1);
            prop_assert!(record.attempts <= max_retries + 1);
        }
        for failures in &result.client_failures {
            for failure in failures {
                prop_assert_eq!(failure.attempts, max_retries + 1);
                prop_assert!(failure.censored_latency_us() >= 0.0);
            }
        }
    }
}
