//! Golden-seed pinning: the event queue, record pipeline and RNG
//! streams together define the simulation's output bit-for-bit. These
//! tests freeze one run's summary so hot-path refactors (queue swaps,
//! buffer reuse) can prove they did not change observable behaviour.
//!
//! If a change *intends* to alter results (new RNG, different physics),
//! update the constants in the same commit and say why.

// Integration tests exercise the public API end-to-end: unwrap on
// already-validated setup and exact float comparison (bit-identity is
// the property under test) are the point here, not defects.
#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)]

use std::sync::Arc;

use treadmill::core::LoadTest;
use treadmill::sim::SimDuration;
use treadmill::workloads::Memcached;

fn golden_test() -> LoadTest {
    LoadTest::new(Arc::new(Memcached::default()), 250_000.0)
        .clients(4)
        .duration(SimDuration::from_millis(120))
        .warmup(SimDuration::from_millis(30))
        .seed(42)
}

#[test]
fn load_test_run_zero_is_bit_stable() {
    let report = golden_test().run(0);
    let agg = &report.aggregated;
    // Captured from the pre-refactor BinaryHeap event queue; the indexed
    // 4-ary queue must reproduce these bits exactly (FIFO tie-break and
    // RNG draw order are load-bearing).
    let golden: &[(&str, f64, u64)] = &[
        ("mean", agg.mean, 0x40501c2ac227e8da),
        ("p50", agg.p50, 0x404dd74f1448d80b),
        ("p90", agg.p90, 0x4054369d4cff4238),
        ("p95", agg.p95, 0x4057610074c6b6e9),
        ("p99", agg.p99, 0x4061dba25512ec6a),
        ("p999", agg.p999, 0x406b8673114d2f5c),
        ("min", agg.min, 0x40461d4fdf3b645a),
        ("max", agg.max, 0x40768db645a1cac1),
    ];
    for (name, value, bits) in golden {
        assert_eq!(
            value.to_bits(),
            *bits,
            "aggregated {name} drifted: got {value:?} (0x{:016x})",
            value.to_bits()
        );
    }
    assert_eq!(agg.count, 22_378);
    assert_eq!(report.run.total_responses(), 29_839);
    assert_eq!(report.run.events_executed, 298_547);
    assert_eq!(report.pooled_latencies().len(), 22_378);
    assert_eq!(report.ground_truth.len(), 22_378);
}

#[test]
fn zero_fault_config_keeps_the_golden_bits() {
    use treadmill::cluster::{FaultSpec, RetryPolicy};
    // Configuring the fault layer with all-zero probabilities and a
    // disabled retry policy must not perturb a single golden bit: the
    // fault-off path schedules no events and draws no RNG.
    let report = golden_test()
        .faults(FaultSpec::default())
        .retry_policy(RetryPolicy::default())
        .run(0);
    let agg = &report.aggregated;
    assert_eq!(agg.p50.to_bits(), 0x404dd74f1448d80b);
    assert_eq!(agg.p99.to_bits(), 0x4061dba25512ec6a);
    assert_eq!(agg.max.to_bits(), 0x40768db645a1cac1);
    assert_eq!(agg.count, 22_378);
    assert_eq!(report.run.total_responses(), 29_839);
    assert_eq!(report.run.events_executed, 298_547);
    assert!(report.run.fault_summary.is_quiet());
    assert_eq!(report.run.total_failures(), 0);
}

#[test]
fn checkpoint_resume_reproduces_the_golden_bits() {
    use treadmill::core::ResumableRun;
    // Kill-and-resume must land on the exact pinned bits: step partway,
    // snapshot, abandon the engine ("crash"), restore onto a freshly
    // built engine, finish. Any state the snapshot misses — an RNG
    // stream position, a queue tie-break, a fault cursor — shows up
    // here as a drifted bit.
    let bytes = {
        let mut run = ResumableRun::new(golden_test(), 0);
        run.step(123_456);
        run.checkpoint()
    };
    let mut resumed = ResumableRun::resume(golden_test(), 0, &bytes).unwrap();
    while resumed.step(50_000) > 0 {}
    let report = resumed.finish();
    let agg = &report.aggregated;
    assert_eq!(agg.p50.to_bits(), 0x404dd74f1448d80b);
    assert_eq!(agg.p99.to_bits(), 0x4061dba25512ec6a);
    assert_eq!(agg.max.to_bits(), 0x40768db645a1cac1);
    assert_eq!(agg.count, 22_378);
    assert_eq!(report.run.total_responses(), 29_839);
    assert_eq!(report.run.events_executed, 298_547);
    assert!(report.run.audit_findings.is_empty());
}

fn sharded_golden_test(threads: u32) -> LoadTest {
    LoadTest::new(Arc::new(Memcached::default()), 150_000.0)
        .clients(2)
        .duration(SimDuration::from_millis(80))
        .warmup(SimDuration::from_millis(20))
        .seed(42)
        .servers(4)
        .remote_every(4)
        .threads(threads)
}

#[test]
fn sharded_run_is_bit_identical_across_thread_counts() {
    // The headline guarantee of the parallel executor: thread count is
    // a pure performance knob. Same seed → same bits at 1, 2 and 8
    // workers, down to every individual record.
    let base = sharded_golden_test(1).run(0);
    assert_eq!(base.run.client_records.len(), 8, "4 servers × 2 clients");
    assert!(base.run.total_responses() > 0);
    for threads in [2u32, 8] {
        let report = sharded_golden_test(threads).run(0);
        assert_eq!(
            report.aggregated.p50.to_bits(),
            base.aggregated.p50.to_bits(),
            "p50 drifted at {threads} threads"
        );
        assert_eq!(
            report.aggregated.p99.to_bits(),
            base.aggregated.p99.to_bits(),
            "p99 drifted at {threads} threads"
        );
        assert_eq!(
            report.aggregated.max.to_bits(),
            base.aggregated.max.to_bits(),
            "max drifted at {threads} threads"
        );
        assert_eq!(report.aggregated.count, base.aggregated.count);
        assert_eq!(report.per_instance, base.per_instance);
        assert_eq!(report.run.client_records, base.run.client_records);
        assert_eq!(report.run.events_executed, base.run.events_executed);
        assert_eq!(report.run.completed_at, base.run.completed_at);
    }
}

#[test]
fn one_server_sharded_run_matches_legacy_golden_bits() {
    // A forced one-shard sharded run reuses the run seed verbatim and
    // routes nothing across shards, so it must land on the exact same
    // pinned bits as the legacy unsharded engine.
    let report = golden_test().run_sharded(0);
    let agg = &report.aggregated;
    assert_eq!(agg.p50.to_bits(), 0x404dd74f1448d80b);
    assert_eq!(agg.p99.to_bits(), 0x4061dba25512ec6a);
    assert_eq!(agg.max.to_bits(), 0x40768db645a1cac1);
    assert_eq!(agg.count, 22_378);
    assert_eq!(report.run.total_responses(), 29_839);
    assert_eq!(report.run.events_executed, 298_547);
}

#[test]
fn threshold_zero_screened_sweep_matches_full_factorial_bytes() {
    use std::fs;
    use treadmill::core::{
        run_factorial_sweep, run_screened_sweep, LoadTestConfig, SweepOptions,
    };
    use treadmill::inference::screen_hardware;

    // A screen with threshold 0 flags every cell, so the screened sweep
    // must degenerate to the full factorial exactly: same per-cell
    // seeds, same DES bits, byte-identical artifacts. Any divergence
    // means the screening layer leaks into the measurement (e.g. the
    // per-cell config hash picking up the screen knob).
    let config = LoadTestConfig::from_json(
        r#"{"workload": {"workload": "memcached"},
            "target_rps": 120000, "clients": 2,
            "connections_per_client": 4,
            "duration_ms": 30, "warmup_ms": 10, "seed": 42}"#,
    )
    .unwrap();
    let opts = SweepOptions {
        runs: 1,
        ..SweepOptions::default()
    };
    let base = std::env::temp_dir().join(format!("tml-golden-screen-{}", std::process::id()));
    let full_dir = base.join("full");
    let screened_dir = base.join("screened");
    let _ = fs::remove_dir_all(&base);

    run_factorial_sweep(&config, &full_dir, &opts).unwrap();
    let plan = screen_hardware(&config, 0.0).unwrap();
    assert_eq!(plan.flagged.len(), 16, "threshold 0 must flag every cell");
    run_screened_sweep(&config, &screened_dir, &opts, &plan.to_sweep_plan()).unwrap();

    let full_factorial = fs::read(full_dir.join("factorial.tsv")).unwrap();
    let screened_factorial = fs::read(screened_dir.join("factorial.tsv")).unwrap();
    assert_eq!(
        full_factorial, screened_factorial,
        "factorial.tsv bytes diverged under a flag-everything screen"
    );
    for cell in 0..16 {
        for artifact in ["summary.tsv", "attribution.tsv", "cell_0.tsv"] {
            let rel = format!("hw_{cell:02}/{artifact}");
            let full = fs::read(full_dir.join(&rel)).unwrap();
            let screened = fs::read(screened_dir.join(&rel)).unwrap();
            assert_eq!(full, screened, "{rel} bytes diverged");
        }
    }
    // The screened run writes its extra prediction artifact; the full
    // factorial must not.
    assert!(screened_dir.join("screen.tsv").exists());
    assert!(!full_dir.join("screen.tsv").exists());
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn distinct_run_indices_stay_distinct() {
    let test = golden_test();
    let a = test.run(0);
    let b = test.run(1);
    assert_ne!(
        a.aggregated.p99.to_bits(),
        b.aggregated.p99.to_bits(),
        "run indices must derive distinct seed streams"
    );
}
