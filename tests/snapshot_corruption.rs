//! Property tests for the `TMLS` snapshot envelope: every way a
//! checkpoint file can be damaged on disk — truncation from a torn
//! write, a flipped bit from the storage layer, an envelope from a
//! different format version — must surface as a typed
//! [`SnapshotError`], never a panic and never silently-wrong state.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use treadmill::sim::snapshot::{open, seal, SnapshotError, ENVELOPE_BYTES, SNAPSHOT_VERSION};

proptest! {
    /// Intact envelopes round-trip to the exact payload.
    #[test]
    fn seal_open_roundtrips(payload in proptest::collection::vec(0u8..=255, 0..512)) {
        let sealed = seal(&payload);
        prop_assert_eq!(open(&sealed).unwrap(), payload.as_slice());
    }

    /// Truncation at any byte — header or payload — is typed.
    #[test]
    fn truncation_is_typed(
        payload in proptest::collection::vec(0u8..=255, 0..256),
        cut in 0usize..512,
    ) {
        let sealed = seal(&payload);
        let cut = cut % sealed.len(); // strictly shorter than intact
        match open(&sealed[..cut]) {
            Err(SnapshotError::Truncated) => {}
            other => prop_assert!(false, "truncated at {}: {:?}", cut, other),
        }
    }

    /// A single flipped bit anywhere in the envelope is caught: bad
    /// magic, bad version, length mismatch, or checksum mismatch —
    /// never a clean open of corrupted bytes.
    #[test]
    fn bit_flip_is_detected(
        payload in proptest::collection::vec(0u8..=255, 0..256),
        at in 0usize..512,
        bit in 0u8..8,
    ) {
        let mut sealed = seal(&payload);
        let at = at % sealed.len();
        sealed[at] ^= 1 << bit;
        match open(&sealed) {
            Err(
                SnapshotError::BadMagic
                | SnapshotError::BadVersion { .. }
                | SnapshotError::Truncated
                | SnapshotError::ChecksumMismatch,
            ) => {}
            Ok(_) => prop_assert!(false, "flip at byte {} bit {} opened cleanly", at, bit),
            Err(e) => prop_assert!(false, "unexpected error class: {}", e),
        }
    }

    /// Envelopes stamped with any other format version are refused
    /// with the version they carried (even when the checksum is valid
    /// for the payload).
    #[test]
    fn wrong_version_is_refused(
        payload in proptest::collection::vec(0u8..=255, 0..128),
        version in 0u32..=u32::MAX,
    ) {
        let version = if version == SNAPSHOT_VERSION { version + 1 } else { version };
        let mut sealed = seal(&payload);
        sealed[4..8].copy_from_slice(&version.to_le_bytes());
        match open(&sealed) {
            Err(SnapshotError::BadVersion { found }) => prop_assert_eq!(found, version),
            other => prop_assert!(false, "version {}: {:?}", version, other),
        }
    }

    /// Arbitrary bytes — not even an envelope — are always typed.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        match open(&bytes) {
            Ok(payload) => {
                // Only a genuine envelope may open.
                prop_assert!(bytes.len() >= ENVELOPE_BYTES);
                prop_assert_eq!(&bytes[..4], b"TMLS");
                prop_assert_eq!(payload.len(), bytes.len() - ENVELOPE_BYTES);
            }
            Err(e) => { let _ = e.to_string(); }
        }
    }
}
