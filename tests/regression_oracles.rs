//! Cross-solver oracle properties: the three quantile-regression
//! solvers (exact LP, smoothed IRLS, saturated-design) must agree with
//! each other within their documented tolerances on randomly generated
//! problems — plus input-edge oracles for the screening entry points
//! (degenerate factor sets must come back as typed errors, never as an
//! empty ranking a caller could mistake for "nothing matters").

// Integration tests exercise the public API end-to-end: unwrap on
// already-validated setup and exact float comparison (bit-identity is
// the property under test) are the point here, not defects.
#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)]

use proptest::prelude::*;
use treadmill::stats::linalg::Matrix;
use treadmill::stats::regression::{
    experiment_quantile_fit, quantile_regression_exact, quantile_regression_irls,
    saturated_quantile_fit, total_pinball_loss, Cell, FactorialDesign, IrlsOptions,
};

use treadmill::inference::{
    screen_cells, screen_factors, ScreenError, ScreeningOptions, TailPrediction,
};

/// Screening a 0- or 1-factor space is a caller bug: a 2^0 or 2^1
/// "design" cannot separate factor effects from noise, and silently
/// returning an empty ranking would read as "no factor matters". Both
/// entry points must refuse with a typed error instead.
#[test]
fn degenerate_factor_sets_are_typed_screening_errors() {
    let opts = ScreeningOptions::default();
    let err = screen_factors(&[], opts, |_, _| 0.0).unwrap_err();
    assert_eq!(err, ScreenError::TooFewFactors { count: 0 });
    assert!(err.to_string().contains("at least 2 factors"), "{err}");

    let err = screen_factors(&["numa"], opts, |_, _| 0.0).unwrap_err();
    assert_eq!(err, ScreenError::TooFewFactors { count: 1 });

    // The analytic cell screen refuses the same inputs before ever
    // calling the predictor.
    let never = |_: &[bool], _: usize| -> Result<TailPrediction, String> {
        panic!("predictor must not run for a degenerate factor set")
    };
    let err = screen_cells(&[], 0.25, never).unwrap_err();
    assert_eq!(err, ScreenError::TooFewFactors { count: 0 });
    let err = screen_cells(&["numa"], 0.25, never).unwrap_err();
    assert_eq!(err, ScreenError::TooFewFactors { count: 1 });

    // And the other end of the range: 2^k enumeration is capped.
    let names: Vec<String> = (0..17).map(|i| format!("f{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let err = screen_cells(&refs, 0.25, never).unwrap_err();
    assert_eq!(err, ScreenError::TooManyFactors { count: 17 });
}

fn design_count(k: usize, order: usize) -> usize {
    // 1 + sum_{i=1..order} C(k, i)
    fn choose(n: usize, r: usize) -> usize {
        if r > n {
            return 0;
        }
        (0..r).fold(1usize, |acc, i| acc * (n - i) / (i + 1))
    }
    1 + (1..=order.min(k)).map(|i| choose(k, i)).sum::<usize>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn design_term_counts_are_binomial_sums(k in 1usize..6, order in 1usize..6) {
        let names: Vec<String> = (0..k).map(|i| format!("f{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let design = FactorialDesign::with_interactions(&refs, order);
        prop_assert_eq!(design.num_terms(), design_count(k, order));
        prop_assert_eq!(design.term_labels().len(), design.num_terms());
    }

    #[test]
    fn lp_never_loses_to_irls(
        seed in 0u64..500,
        n in 30usize..80,
        tau in 0.2f64..0.9,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut matrix = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let x: f64 = rng.gen_range(0.0..10.0);
            matrix[(i, 0)] = 1.0;
            matrix[(i, 1)] = x;
            y.push(1.0 + 0.5 * x + rng.gen_range(0.0..5.0));
        }
        let lp = quantile_regression_exact(&matrix, &y, tau).unwrap();
        let irls =
            quantile_regression_irls(&matrix, &y, tau, &IrlsOptions::default()).unwrap();
        let lp_loss = total_pinball_loss(tau, &y, &matrix.mul_vec(&lp));
        let irls_loss = total_pinball_loss(tau, &y, &matrix.mul_vec(&irls));
        // The LP is the exact optimum; IRLS must be close but never
        // better (up to numerical slack).
        prop_assert!(lp_loss <= irls_loss + 1e-6, "lp {lp_loss} vs irls {irls_loss}");
        prop_assert!(irls_loss <= lp_loss * 1.10 + 1e-6, "irls strayed: {irls_loss} vs {lp_loss}");
    }

    #[test]
    fn saturated_fits_interpolate_their_cell_statistic(
        seed in 0u64..200,
        tau in 0.1f64..0.9,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let design = FactorialDesign::full(&["a", "b"]);
        let cells: Vec<Cell> = design
            .all_configurations()
            .into_iter()
            .map(|levels| {
                let runs: Vec<Vec<f64>> = (0..3)
                    .map(|_| (0..40).map(|_| rng.gen_range(0.0..100.0)).collect())
                    .collect();
                Cell::new(levels, runs)
            })
            .collect();
        // Pooled variant interpolates pooled cell quantiles.
        let pooled = saturated_quantile_fit(&design, &cells, tau).unwrap();
        for cell in &cells {
            let pred = design.predict(&pooled, &cell.levels);
            let target = cell.pooled_quantile(tau);
            prop_assert!((pred - target).abs() < 1e-6);
        }
        // Experiment variant interpolates the quantile of per-run
        // quantiles.
        let experiment = experiment_quantile_fit(&design, &cells, tau).unwrap();
        for cell in &cells {
            let pred = design.predict(&experiment, &cell.levels);
            let mut qs = treadmill::stats::regression::per_run_quantiles(cell, tau);
            qs.sort_by(f64::total_cmp);
            let target = treadmill::stats::quantile::quantile_of_sorted(&qs, tau);
            prop_assert!((pred - target).abs() < 1e-6);
        }
    }

    #[test]
    fn coefficients_shift_equivariantly(
        seed in 0u64..200,
        shift in -50.0f64..50.0,
    ) {
        // Adding a constant to every observation must move only the
        // intercept.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let design = FactorialDesign::full(&["a", "b"]);
        let make_cells = |offset: f64, rng: &mut rand::rngs::SmallRng| -> Vec<Cell> {
            design
                .all_configurations()
                .into_iter()
                .enumerate()
                .map(|(i, levels)| {
                    let base = 50.0 + 7.0 * i as f64;
                    let runs = vec![(0..30)
                        .map(|k| base + offset + f64::from(k % 5))
                        .collect::<Vec<f64>>()];
                    let _ = rng.gen::<u8>();
                    Cell::new(levels, runs)
                })
                .collect()
        };
        let a = saturated_quantile_fit(&design, &make_cells(0.0, &mut rng), 0.5).unwrap();
        let b =
            saturated_quantile_fit(&design, &make_cells(shift, &mut rng), 0.5).unwrap();
        prop_assert!((b[0] - a[0] - shift).abs() < 1e-6, "intercept must absorb the shift");
        for t in 1..a.len() {
            prop_assert!((b[t] - a[t]).abs() < 1e-6, "term {t} moved");
        }
    }
}
