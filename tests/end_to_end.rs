//! End-to-end integration: JSON configuration → multi-instance load
//! test → statistically aggregated report, across every crate.

// Integration tests exercise the public API end-to-end: unwrap on
// already-validated setup and exact float comparison (bit-identity is
// the property under test) are the point here, not defects.
#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)]

use std::sync::Arc;

use treadmill::core::{LoadTest, LoadTestConfig};
use treadmill::sim::{SimDuration, SimTime};
use treadmill::workloads::{Memcached, WorkloadSpec};

fn quick_test(rps: f64, seed: u64) -> LoadTest {
    LoadTest::new(Arc::new(Memcached::default()), rps)
        .clients(4)
        .duration(SimDuration::from_millis(120))
        .warmup(SimDuration::from_millis(30))
        .seed(seed)
}

#[test]
fn json_config_drives_a_full_run() {
    let config = LoadTestConfig::from_json(
        r#"{
            "workload": { "workload": "memcached", "config": { "get_fraction": 0.8 } },
            "target_rps": 150000,
            "clients": 4,
            "duration_ms": 120,
            "warmup_ms": 30,
            "seed": 9
        }"#,
    )
    .expect("valid config");
    let report = config.build().expect("buildable").run(0);
    assert_eq!(report.per_instance.len(), 4);
    assert!(report.aggregated.count > 5_000);
}

#[test]
fn report_invariants_hold() {
    let report = quick_test(200_000.0, 1).run(0);
    let agg = &report.aggregated;
    // Percentiles are ordered.
    assert!(agg.min <= agg.p50 && agg.p50 <= agg.p90);
    assert!(agg.p90 <= agg.p95 && agg.p95 <= agg.p99);
    assert!(agg.p99 <= agg.p999 && agg.p999 <= agg.max);
    // User-space view sits above NIC ground truth at every percentile.
    for p in [0.5, 0.9, 0.99] {
        assert!(
            agg.percentile(if p == 0.9 { 0.90 } else { p })
                > report.ground_truth.quantile_us(p),
            "user view must include client+kernel time at p{p}"
        );
    }
    // Offered load was sustained.
    let ratio = report.completion_ratio(200_000.0);
    assert!(ratio > 0.95 && ratio < 1.05, "completion {ratio}");
}

#[test]
fn ground_truth_gap_is_stable_across_load() {
    let low = quick_test(100_000.0, 2).run(0);
    let high = quick_test(700_000.0, 2).run(0);
    let gap = |r: &treadmill::core::LoadTestReport| {
        r.aggregated.p50 - r.ground_truth.quantile_us(0.5)
    };
    let low_gap = gap(&low);
    let high_gap = gap(&high);
    // The paper's observation: the kernel-path offset stays ~constant
    // (30us) from 10% to 80% utilisation.
    assert!((low_gap - high_gap).abs() < 8.0, "{low_gap} vs {high_gap}");
}

#[test]
fn workload_spec_round_trips_through_json() {
    let spec = WorkloadSpec::from_json(
        r#"{ "workload": "mcrouter", "config": { "base_cpu_ns": 9000.0 } }"#,
    )
    .unwrap();
    let workload = spec.build().unwrap();
    assert_eq!(workload.name(), "mcrouter");
    let test = LoadTest::new(workload, 100_000.0)
        .clients(2)
        .duration(SimDuration::from_millis(60))
        .warmup(SimDuration::from_millis(20));
    let report = test.run(0);
    assert!(report.aggregated.p50 > 0.0);
}

#[test]
fn deterministic_workload_gives_near_constant_latency_at_low_load() {
    // Synthetic fixed-profile workload + deterministic pacing at 2%
    // utilisation: no queueing, no service variance — latency collapses
    // to the pipeline's fixed costs. This calibrates the ~70us floor
    // every other experiment sits on.
    use treadmill::cluster::{ClientSpec, ClusterBuilder};
    use treadmill::core::{InterArrival, OpenLoopSource};
    use treadmill::workloads::Synthetic;

    let result = ClusterBuilder::new(Arc::new(Synthetic::fixed(10_000.0, 3_000.0)))
        .seed(4)
        .server_spec(treadmill::cluster::ServerSpec {
            // Pin the governor out of the picture.
            hysteresis: treadmill::cluster::HysteresisSpec::none(),
            ..Default::default()
        })
        .hardware(treadmill::cluster::HardwareConfig::from_index(0b0100)) // performance governor
        .client(
            ClientSpec::default(),
            Box::new(OpenLoopSource::new(
                InterArrival::Deterministic { rate_rps: 20_000.0 },
                16,
            )),
        )
        .duration(SimDuration::from_millis(100))
        .run();
    let lat = result.user_latencies_us(SimTime::from_millis(20));
    let p1 = treadmill::stats::quantile::quantile(&lat, 0.01);
    let p99 = treadmill::stats::quantile::quantile(&lat, 0.99);
    assert!(
        p99 - p1 < 20.0,
        "fixed service + paced arrivals must give a tight band: p1 {p1}, p99 {p99}"
    );
    assert!(p1 > 40.0 && p1 < 90.0, "pipeline floor moved: {p1}us");
}

#[test]
fn same_seed_same_report_different_seed_different_report() {
    let a = quick_test(400_000.0, 77).run(3);
    let b = quick_test(400_000.0, 77).run(3);
    let c = quick_test(400_000.0, 78).run(3);
    assert_eq!(a.aggregated, b.aggregated);
    assert_ne!(a.aggregated.p99, c.aggregated.p99);
}
