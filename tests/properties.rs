//! Property-based integration tests: invariants that must hold for any
//! hardware configuration, seed and (sane) load.

// Integration tests exercise the public API end-to-end: unwrap on
// already-validated setup and exact float comparison (bit-identity is
// the property under test) are the point here, not defects.
#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)]

use std::sync::Arc;

use proptest::prelude::*;
use treadmill::cluster::{ClientSpec, ClusterBuilder, HardwareConfig, PoissonSource};
use treadmill::sim::{SimDuration, SimTime};
use treadmill::workloads::Memcached;

fn run_cluster(config_index: usize, seed: u64, rate: f64) -> treadmill::cluster::RunResult {
    ClusterBuilder::new(Arc::new(Memcached::default()))
        .seed(seed)
        .hardware(HardwareConfig::from_index(config_index))
        .client(
            ClientSpec::default(),
            Box::new(PoissonSource::new(rate, 16)),
        )
        .duration(SimDuration::from_millis(25))
        .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn request_timestamps_are_causally_ordered(
        config in 0usize..16,
        seed in 0u64..1_000,
        rate in 50_000.0f64..500_000.0,
    ) {
        let result = run_cluster(config, seed, rate);
        prop_assert!(result.total_responses() > 0);
        for record in result.all_records() {
            prop_assert!(record.t_nic_out >= record.t_generated);
            prop_assert!(record.t_nic_in > record.t_nic_out);
            prop_assert!(record.t_delivered >= record.t_nic_in);
            prop_assert!(record.user_latency_us() >= record.nic_latency_us());
            prop_assert!(record.server_time_us() >= 0.0);
            prop_assert!(record.network_time_us() > 0.0);
        }
    }

    #[test]
    fn utilisations_are_fractions(
        config in 0usize..16,
        seed in 0u64..1_000,
    ) {
        let result = run_cluster(config, seed, 300_000.0);
        prop_assert!(result.server_utilization >= 0.0);
        prop_assert!(result.server_utilization <= 1.0);
        for &u in &result.client_cpu_utilization {
            prop_assert!((0.0..=1.0).contains(&u));
        }
        for core in &result.per_core {
            prop_assert!((0.0..=1.0).contains(&core.utilization));
            prop_assert!(core.final_freq_ghz >= 1.2 && core.final_freq_ghz <= 3.0);
        }
    }

    #[test]
    fn every_sent_request_completes(
        config in 0usize..16,
        seed in 0u64..1_000,
    ) {
        // The cluster drains after the sending window: conservation of
        // requests (nothing lost, nothing duplicated).
        let result = run_cluster(config, seed, 200_000.0);
        let ids: std::collections::HashSet<_> =
            result.all_records().map(|r| r.id).collect();
        prop_assert_eq!(ids.len(), result.total_responses(), "duplicate ids");
        // Roughly rate × window requests (Poisson noise allowed).
        let expected = 200_000.0 * 0.025;
        let actual = result.total_responses() as f64;
        prop_assert!((actual / expected - 1.0).abs() < 0.25, "{actual} vs {expected}");
    }

    #[test]
    fn warmup_monotone_in_sample_count(
        seed in 0u64..100,
        warmup_ms in 1u64..20,
    ) {
        let result = run_cluster(0, seed, 200_000.0);
        let warmup = SimTime::from_millis(warmup_ms);
        let all = result.user_latencies_us(SimTime::ZERO).len();
        let filtered = result.user_latencies_us(warmup).len();
        prop_assert!(filtered <= all);
        let longer = result.user_latencies_us(warmup + SimDuration::from_millis(2)).len();
        prop_assert!(longer <= filtered);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn per_instance_aggregate_is_bounded_by_extremes(
        seed in 0u64..200,
        clients in 2usize..5,
    ) {
        use treadmill::core::LoadTest;
        let report = LoadTest::new(Arc::new(Memcached::default()), 200_000.0)
            .clients(clients)
            .duration(SimDuration::from_millis(40))
            .warmup(SimDuration::from_millis(10))
            .seed(seed)
            .run(0);
        let p99s: Vec<f64> = report.per_instance.iter().map(|s| s.p99).collect();
        let lo = p99s.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = p99s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(report.aggregated.p99 >= lo - 1e-9);
        prop_assert!(report.aggregated.p99 <= hi + 1e-9);
    }
}
