//! The four pitfalls of §II, each reproduced as an integration test:
//! wrong inter-arrival generation, broken statistical aggregation,
//! client-side queueing bias, and performance hysteresis.

// Integration tests exercise the public API end-to-end: unwrap on
// already-validated setup and exact float comparison (bit-identity is
// the property under test) are the point here, not defects.
#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)]

use std::sync::Arc;

use treadmill::baselines::{cloudsuite, mutilate, run_profile, treadmill_shape};
use treadmill::cluster::{ClientSpec, ClusterBuilder, HardwareConfig};
use treadmill::core::{
    holistic_summary, tail_composition, ClosedLoopSource, InterArrival, LoadTest,
    OpenLoopSource,
};
use treadmill::sim::{SimDuration, SimTime};
use treadmill::stats::{LatencySummary, StaticHistogram};
use treadmill::workloads::Memcached;

fn workload() -> Arc<Memcached> {
    Arc::new(Memcached::default())
}

#[test]
fn pitfall_1_closed_loop_caps_outstanding_requests() {
    let run = |source: Box<dyn treadmill::cluster::TrafficSource>| {
        ClusterBuilder::new(workload())
            .seed(5)
            .client(
                ClientSpec {
                    connections: 16,
                    ..Default::default()
                },
                source,
            )
            .duration(SimDuration::from_millis(80))
            .sample_outstanding(true)
            .run()
    };
    let closed = run(Box::new(ClosedLoopSource::new(8)));
    let open = run(Box::new(OpenLoopSource::new(
        InterArrival::Exponential {
            rate_rps: 400_000.0,
        },
        16,
    )));
    let max = |r: &treadmill::cluster::RunResult| {
        r.outstanding.iter().map(|&(_, n)| n).max().unwrap()
    };
    assert!(max(&closed) <= 8, "closed loop leaked past its cap");
    assert!(
        max(&open) > 20,
        "open loop must expose unbounded queueing, saw {}",
        max(&open)
    );
}

#[test]
fn pitfall_2_static_histogram_and_holistic_aggregation_bias() {
    // Static bins clip the tail ...
    let mut hist = StaticHistogram::new(0.0, 200.0, 200);
    let samples: Vec<f64> = (0..10_000)
        .map(|i| if i % 100 == 0 { 900.0 } else { 50.0 })
        .collect();
    for &v in &samples {
        hist.record(v);
    }
    let clipped_p999 = hist.quantile(0.999);
    let true_p999 = LatencySummary::from_samples(&samples).p999;
    assert!(clipped_p999 <= 200.0);
    assert!(true_p999 >= 900.0, "true p99.9 {true_p999}");

    // ... and pooling clients hides which client owns the tail.
    let per_client = vec![
        (0..1_000).map(|i| 100.0 + f64::from(i % 10)).collect::<Vec<f64>>(),
        (0..1_000).map(|i| 100.0 + f64::from(i % 10)).collect(),
        (0..1_000).map(|i| 500.0 + f64::from(i % 10)).collect(),
    ];
    let pooled = holistic_summary(&per_client);
    assert!(pooled.p99 > 490.0, "pooled p99 rides the outlier client");
    let composition = tail_composition(&per_client, &[0.99]);
    assert!(
        composition[0].shares[2] > 0.9,
        "the decomposition identifies the guilty client: {:?}",
        composition[0].shares
    );
}

#[test]
fn pitfall_3_single_heavy_client_biases_the_tail() {
    let cs = run_profile(
        &cloudsuite(),
        workload(),
        100_000.0,
        HardwareConfig::default(),
        SimDuration::from_millis(100),
        SimDuration::from_millis(25),
        6,
    );
    let tm = run_profile(
        &treadmill_shape(),
        workload(),
        100_000.0,
        HardwareConfig::default(),
        SimDuration::from_millis(100),
        SimDuration::from_millis(25),
        6,
    );
    let cs_err = cs.measured.p99 - cs.ground_truth.quantile_us(0.99);
    let tm_err = tm.measured.p99 - tm.ground_truth.quantile_us(0.99);
    assert!(
        cs_err > tm_err + 20.0,
        "single heavy client must add visible bias: {cs_err} vs {tm_err}"
    );
}

#[test]
fn pitfall_4_hysteresis_across_restarts() {
    let test = LoadTest::new(workload(), 700_000.0)
        .hardware(HardwareConfig::from_index(1)) // interleave NUMA
        .clients(4)
        .duration(SimDuration::from_millis(120))
        .warmup(SimDuration::from_millis(30))
        .seed(12);
    let p99s: Vec<f64> = (0..5).map(|i| test.run(i).aggregated.p99).collect();
    let min = p99s.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = p99s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max / min > 1.02,
        "restarts must not converge to one value: {p99s:?}"
    );
}

#[test]
fn mutilate_closed_loop_underestimates_under_pressure() {
    let mu = run_profile(
        &mutilate(),
        workload(),
        950_000.0,
        HardwareConfig::default(),
        SimDuration::from_millis(150),
        SimDuration::from_millis(40),
        7,
    );
    let tm = run_profile(
        &treadmill_shape(),
        workload(),
        950_000.0,
        HardwareConfig::default(),
        SimDuration::from_millis(150),
        SimDuration::from_millis(40),
        7,
    );
    assert!(
        tm.measured.p99 > mu.measured.p99,
        "open loop must expose a heavier tail"
    );
    assert!(
        mu.achieved_rps < tm.achieved_rps,
        "closed loop falls behind the schedule"
    );
}

#[test]
fn warmup_filtering_is_applied() {
    let report = LoadTest::new(workload(), 100_000.0)
        .clients(2)
        .duration(SimDuration::from_millis(100))
        .warmup(SimDuration::from_millis(50))
        .seed(8)
        .run(0);
    let warmup = SimTime::ZERO + SimDuration::from_millis(50);
    let all = report.run.total_responses();
    let measured = report
        .run
        .all_records()
        .filter(|r| r.t_generated >= warmup)
        .count();
    assert!(measured < all, "warm-up samples must be discarded");
    assert_eq!(report.ground_truth.len(), measured);
}
