//! Chaos soak: SIGKILL a sweep at randomized (seeded) points, resume,
//! and demand byte-identical artifacts.
//!
//! The crash-tolerance claim is end-to-end: a `treadmill-cli sweep`
//! process killed at *any* instant — mid-cell, mid-checkpoint,
//! mid-journal-append — must, after `--resume`, produce `cell_*.tsv`
//! and `summary.tsv` files byte-for-byte identical to a sweep that was
//! never interrupted. This test runs the real binary as a child
//! process and kills it with SIGKILL (no chance to clean up), so every
//! durability mechanism is exercised for real: fsynced journal
//! appends, atomic tmp-then-rename artifact writes, checkpoint
//! envelopes, torn-line tolerance.
//!
//! Kill points are drawn from a fixed-seed LCG, not wall-clock
//! entropy, so a failure reproduces. The kill budget is deliberately
//! small for CI; raise `TML_CHAOS_KILLS` locally for a longer soak.

#![allow(clippy::unwrap_used)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

/// Deterministic kill-delay stream (splitmix-style LCG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
}

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_treadmill-cli")
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tml-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_config(dir: &Path) -> PathBuf {
    let path = dir.join("config.json");
    fs::write(
        &path,
        r#"{
            "workload": { "workload": "memcached" },
            "target_rps": 300000,
            "clients": 2,
            "duration_ms": 150,
            "warmup_ms": 30
        }"#,
    )
    .unwrap();
    path
}

fn sweep_args(config: &Path, out: &Path, resume: bool) -> Vec<String> {
    let mut args = vec![
        "sweep".to_string(),
        config.display().to_string(),
        "--out".to_string(),
        out.display().to_string(),
        "--runs".to_string(),
        "3".to_string(),
        "--seed".to_string(),
        "7".to_string(),
        "--ckpt-events".to_string(),
        "25000".to_string(),
    ];
    if resume {
        args.push("--resume".to_string());
    }
    args
}

fn kill_budget() -> u32 {
    std::env::var("TML_CHAOS_KILLS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Kills a sweep over `config` at seeded delays until the kill budget
/// is spent, then lets the final resume finish. Returns the number of
/// kills actually landed.
fn chaos_loop(config: &Path, chaos_dir: &Path, budget: u32, lcg_seed: u64) -> u32 {
    let mut rng = Lcg(lcg_seed);
    let mut kills = 0;
    let mut resume = false;
    loop {
        let mut child = Command::new(cli())
            .args(sweep_args(config, chaos_dir, resume))
            .spawn()
            .expect("spawn chaos sweep");
        resume = true;
        if kills >= budget {
            let status = child.wait().expect("wait for final sweep");
            assert!(status.success(), "final resumed sweep failed: {status}");
            break;
        }
        let delay_ms = 20 + rng.next() % 240;
        std::thread::sleep(Duration::from_millis(delay_ms));
        match child.try_wait().expect("poll child") {
            Some(status) => {
                // Finished before the kill fired — the sweep is done.
                assert!(status.success(), "chaos sweep failed: {status}");
                break;
            }
            None => {
                child.kill().expect("SIGKILL child");
                let _ = child.wait();
                kills += 1;
            }
        }
    }
    kills
}

#[test]
fn sigkilled_sweep_resumes_to_byte_identical_artifacts() {
    let root = temp_root("soak");
    let config = write_config(&root);

    // Golden: one uninterrupted sweep.
    let golden_dir = root.join("golden");
    let status = Command::new(cli())
        .args(sweep_args(&config, &golden_dir, false))
        .status()
        .expect("spawn golden sweep");
    assert!(status.success(), "golden sweep failed: {status}");

    // Chaos: kill the sweep at seeded delays, resume, repeat. After the
    // kill budget is spent, let the final resume run to completion.
    let chaos_dir = root.join("chaos");
    let kills = chaos_loop(&config, &chaos_dir, kill_budget(), 0x5EED_CAFE);

    // The whole point: bit-identical artifacts despite the carnage —
    // including the per-cell tail-attribution files and the sweep-wide
    // attribution rollup served by treadmill-serve.
    for artifact in [
        "cell_0.tsv",
        "cell_1.tsv",
        "cell_2.tsv",
        "cell_0.attr.tsv",
        "cell_1.attr.tsv",
        "cell_2.attr.tsv",
        "summary.tsv",
        "attribution.tsv",
    ] {
        let golden = fs::read(golden_dir.join(artifact))
            .unwrap_or_else(|e| panic!("golden {artifact}: {e}"));
        let chaos = fs::read(chaos_dir.join(artifact))
            .unwrap_or_else(|e| panic!("chaos {artifact}: {e}"));
        assert_eq!(
            golden, chaos,
            "{artifact} differs between uninterrupted and killed-and-resumed sweeps \
             ({kills} kills)"
        );
    }

    // Provenance headers survive on every artifact.
    for artifact in ["cell_0.tsv", "summary.tsv"] {
        let text = fs::read_to_string(chaos_dir.join(artifact)).unwrap();
        let header = text.lines().next().unwrap_or_default();
        assert!(
            header.starts_with("# seed=") && header.contains("config_hash="),
            "{artifact} lacks a provenance header: {header:?}"
        );
        assert!(header.contains("version="), "{artifact} header: {header:?}");
    }

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn sigkilled_sharded_multithreaded_sweep_resumes_byte_identical() {
    // Same end-to-end crash soak, but the cells run on the sharded
    // parallel executor (3 servers, 2 worker threads). Checkpoints land
    // only at synchronization-round boundaries, so a SIGKILL during a
    // multi-threaded round must resume onto the same bits.
    let root = temp_root("soak-sharded");
    let config = root.join("config.json");
    fs::write(
        &config,
        r#"{
            "workload": { "workload": "memcached" },
            "target_rps": 200000,
            "clients": 2,
            "duration_ms": 100,
            "warmup_ms": 25,
            "servers": 3,
            "threads": 2,
            "remote_every": 4
        }"#,
    )
    .unwrap();

    let golden_dir = root.join("golden");
    let status = Command::new(cli())
        .args(sweep_args(&config, &golden_dir, false))
        .status()
        .expect("spawn golden sharded sweep");
    assert!(status.success(), "golden sharded sweep failed: {status}");

    let chaos_dir = root.join("chaos");
    // Half the kill budget: the sharded soak triples the per-cell event
    // count, and the unsharded soak above already covers the long tail.
    let kills = chaos_loop(&config, &chaos_dir, kill_budget().div_ceil(2), 0xC0FFEE);

    for artifact in [
        "cell_0.tsv",
        "cell_1.tsv",
        "cell_2.tsv",
        "summary.tsv",
        "attribution.tsv",
    ] {
        let golden = fs::read(golden_dir.join(artifact))
            .unwrap_or_else(|e| panic!("golden {artifact}: {e}"));
        let chaos = fs::read(chaos_dir.join(artifact))
            .unwrap_or_else(|e| panic!("chaos {artifact}: {e}"));
        assert_eq!(
            golden, chaos,
            "{artifact} differs between uninterrupted and killed-and-resumed \
             sharded sweeps ({kills} kills)"
        );
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn sigterm_interrupts_gracefully_and_resume_is_byte_identical() {
    // The CLI installs SIGTERM/SIGINT handlers: an interrupted sweep
    // seals the in-flight checkpoint and flushes the journal, exits 0,
    // and `--resume` continues onto the exact bytes an uninterrupted
    // sweep would have produced — the same drain plumbing
    // treadmill-serve uses.
    let root = temp_root("sigterm");
    let config = write_config(&root);

    let golden_dir = root.join("golden");
    let status = Command::new(cli())
        .args(sweep_args(&config, &golden_dir, false))
        .status()
        .expect("spawn golden sweep");
    assert!(status.success(), "golden sweep failed: {status}");

    let out = root.join("interrupted");
    let mut child = Command::new(cli())
        .args(sweep_args(&config, &out, false))
        .spawn()
        .expect("spawn sweep to interrupt");
    std::thread::sleep(Duration::from_millis(120));
    let finished_early = match child.try_wait().expect("poll child") {
        Some(status) => {
            assert!(status.success(), "sweep failed before SIGTERM: {status}");
            true
        }
        None => {
            let term = Command::new("kill")
                .arg("-TERM")
                .arg(child.id().to_string())
                .status()
                .expect("send SIGTERM");
            assert!(term.success(), "kill -TERM failed");
            let status = child.wait().expect("wait for interrupted sweep");
            // Graceful interruption is a clean exit, not a crash.
            assert!(status.success(), "SIGTERM'd sweep exited {status}");
            false
        }
    };

    if !finished_early {
        let status = Command::new(cli())
            .args(sweep_args(&config, &out, true))
            .status()
            .expect("spawn resume after SIGTERM");
        assert!(status.success(), "resume after SIGTERM failed: {status}");
    }

    for artifact in ["cell_0.tsv", "cell_1.tsv", "cell_2.tsv", "summary.tsv", "attribution.tsv"] {
        let golden = fs::read(golden_dir.join(artifact)).unwrap();
        let interrupted = fs::read(out.join(artifact)).unwrap();
        assert_eq!(
            golden, interrupted,
            "{artifact} differs between uninterrupted and SIGTERM'd-then-resumed sweeps"
        );
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn resume_of_a_finished_sweep_is_a_no_op() {
    let root = temp_root("noop");
    let config = write_config(&root);
    let out = root.join("out");
    let status = Command::new(cli())
        .args(sweep_args(&config, &out, false))
        .status()
        .expect("spawn sweep");
    assert!(status.success());
    let before = fs::read(out.join("summary.tsv")).unwrap();

    let status = Command::new(cli())
        .args(sweep_args(&config, &out, true))
        .status()
        .expect("spawn resume");
    assert!(status.success(), "resume of finished sweep failed");
    let after = fs::read(out.join("summary.tsv")).unwrap();
    assert_eq!(before, after, "no-op resume rewrote the summary differently");
    let _ = fs::remove_dir_all(&root);
}
