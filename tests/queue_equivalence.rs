//! Property test: the 4-ary indexed event queue is observationally
//! identical to a textbook binary-heap implementation under arbitrary
//! interleavings of schedules and pops. The FIFO tie-break at equal
//! times is part of the contract — simulations rely on it for
//! bit-for-bit reproducibility.

// Integration tests exercise the public API end-to-end: unwrap on
// already-validated setup and exact float comparison (bit-identity is
// the property under test) are the point here, not defects.
#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use treadmill::sim::{EventQueue, SimTime};

/// The straightforward reference: a max-heap of inverted `(time, seq)`
/// keys, exactly the structure the engine used before the 4-ary queue.
#[derive(Default)]
struct ReferenceQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    next_seq: u64,
}

impl ReferenceQueue {
    fn schedule(&mut self, at: u64) {
        self.heap.push(Reverse((at, self.next_seq)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse(key)| key)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `ops` drives both queues: values below the threshold schedule an
    /// event at that time (dense collisions on purpose), values at or
    /// above it pop. Every pop must agree on `(time, seq)`.
    #[test]
    fn indexed_heap_matches_reference(
        ops in prop::collection::vec(0u64..64, 1..600),
    ) {
        const POP_THRESHOLD: u64 = 48;
        let mut queue: EventQueue<u64> = EventQueue::new();
        let mut reference = ReferenceQueue::default();
        let mut seq = 0u64;
        for &op in &ops {
            if op < POP_THRESHOLD {
                // Event payload = its sequence number, so a pop exposes
                // exactly which entry surfaced.
                queue.schedule(SimTime::from_nanos(op), seq);
                reference.schedule(op);
                seq += 1;
            } else {
                let got = queue.pop().map(|s| (s.at.as_nanos(), s.event));
                let want = reference.pop();
                prop_assert_eq!(got, want);
            }
        }
        // Drain both: the tail must agree too, and lengths must match.
        loop {
            let got = queue.pop().map(|s| (s.at.as_nanos(), s.event));
            let want = reference.pop();
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
    }

    /// `pop_at_or_before` must behave as peek-then-pop: it pops exactly
    /// when the reference's minimum is within the horizon.
    #[test]
    fn horizon_pop_matches_peek_then_pop(
        times in prop::collection::vec(0u64..32, 1..200),
        horizons in prop::collection::vec(0u64..40, 1..300),
    ) {
        let mut queue: EventQueue<u64> = EventQueue::new();
        let mut reference = ReferenceQueue::default();
        for (i, &t) in times.iter().enumerate() {
            queue.schedule(SimTime::from_nanos(t), i as u64);
            reference.schedule(t);
        }
        for &h in &horizons {
            let got = queue
                .pop_at_or_before(SimTime::from_nanos(h))
                .map(|s| (s.at.as_nanos(), s.event));
            let within = reference
                .heap
                .peek()
                .is_some_and(|Reverse((t, _))| *t <= h);
            let want = if within { reference.pop() } else { None };
            prop_assert_eq!(got, want);
        }
    }
}
