//! Differential oracle: the closed-form analytic estimator
//! (`treadmill::inference::analytic`) versus the discrete-event
//! simulator it screens for.
//!
//! The analytic model is useful only while it keeps *agreeing* with the
//! DES on what matters for screening — the ordering of configurations
//! and the rough magnitude of the stable-regime tail. These tests pin
//! that agreement on a seeded 64-cell grid (16 hardware cells × 4
//! arrival rates) as CI-enforced regression oracles:
//!
//! * rank agreement — Kendall tau between analytic and DES p99
//!   orderings across the whole grid;
//! * bounded relative p99 error in the stable-utilization regime;
//! * screen recall — no cell the DES deems significant is dropped by
//!   the analytic screen;
//!
//! plus proptest metamorphic properties (monotonicity in arrival rate,
//! invariance under factor relabeling, bit-identical determinism) and
//! the 2^5 acceptance scenario: a screened sweep spends ≥5× fewer DES
//! cells than full-factorial while attribution still flags the same
//! dominant factor.

// Integration tests exercise the public API end-to-end: unwrap on
// already-validated setup and exact float comparison (bit-identity is
// the property under test) are the point here, not defects.
#![allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)]

use std::sync::Arc;

use proptest::prelude::*;
use treadmill::cluster::HardwareConfig;
use treadmill::core::LoadTestConfig;
use treadmill::inference::{
    attribute, attribute_graceful, censoring_prediction, collect, predict_cell,
    screen_cells, screen_hardware, CollectionPlan, Dataset,
};
use treadmill::sim::SimDuration;
use treadmill::workloads::Memcached;

/// Arrival rates of the seeded grid (per-server RPS). Spans light load
/// through the near-saturation regime where the factors matter.
const GRID_RPS: [f64; 4] = [150_000.0, 350_000.0, 550_000.0, 750_000.0];

fn grid_config(rps: f64) -> LoadTestConfig {
    LoadTestConfig::from_json(&format!(
        r#"{{"workload": {{"workload": "memcached"}},
            "target_rps": {rps},
            "clients": 2,
            "connections_per_client": 4,
            "duration_ms": 60,
            "warmup_ms": 15,
            "seed": 2016}}"#
    ))
    .expect("grid config is valid")
}

/// DES p99 for one hardware cell of a grid config.
fn des_p99(config: &LoadTestConfig, cell: usize) -> f64 {
    let mut config = config.clone();
    config.hardware = Some(cell as u8);
    config.build().expect("buildable").run(0).aggregated.p99
}

/// Kendall tau-a: concordant minus discordant pairs over all pairs.
/// Ties (common within a rate level — some factors are inert) count
/// against agreement, making the oracle conservative.
fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut net = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let s = ((a[i] - a[j]) * (b[i] - b[j])).signum();
            if s > 0.0 {
                net += 1;
            } else if s < 0.0 {
                net -= 1;
            }
        }
    }
    net as f64 / (n * (n - 1) / 2) as f64
}

/// The three grid oracles share one 64-cell analytic + DES evaluation
/// (the DES half is the expensive part), so they live in one test.
#[test]
fn grid_oracles_rank_error_and_recall() {
    let mut analytic_p99 = Vec::with_capacity(64);
    let mut des = Vec::with_capacity(64);
    let mut utilizations = Vec::with_capacity(64);
    for &rps in &GRID_RPS {
        let config = grid_config(rps);
        for cell in 0..16 {
            let hw = HardwareConfig::from_index(cell);
            let pred = predict_cell(&config, hw).expect("analytic prediction");
            analytic_p99.push(pred.p99_us);
            utilizations.push(pred.utilization);
            des.push(des_p99(&config, cell));
        }
    }

    // (a) Rank agreement at every rate level. The screen's job is to
    // order hardware cells *at a given load*, so the oracle is the
    // per-level Kendall tau over the 16 cells (tau-a, so the analytic
    // model's exact ties — e.g. dvfs-inert pairs at high load — count
    // against agreement). Cross-rate ordering is deliberately not
    // pinned: the ondemand governor makes p99 non-monotone in load
    // (finding 3), and the model and the DES disagree on the magnitude
    // of that dip while agreeing on the per-load ranking that drives
    // screening decisions.
    for (level, &rps) in GRID_RPS.iter().enumerate() {
        let tau = kendall_tau(
            &analytic_p99[level * 16..(level + 1) * 16],
            &des[level * 16..(level + 1) * 16],
        );
        println!("kendall tau at {rps} rps: {tau:.4}");
        assert!(tau >= 0.60, "rank agreement collapsed at {rps} rps: tau {tau:.4}");
    }

    // (b) Bounded relative p99 error in the stable regime. The model's
    // smooth two-moment approximation sits systematically below the
    // DES tail (the simulator has burst and scheduling noise the
    // closed form cannot see); the oracle pins the error band, not
    // exactness — a drift past it means the model and simulator have
    // diverged.
    let mut worst = 0.0f64;
    for i in 0..64 {
        if utilizations[i] < 0.70 {
            let rel = (analytic_p99[i] - des[i]).abs() / des[i];
            worst = worst.max(rel);
        }
    }
    println!("worst stable-regime relative p99 error: {worst:.4}");
    assert!(
        worst < 0.60,
        "stable-regime p99 error out of band: {worst:.4}"
    );

    // (c) Screen recall at each rate: every cell whose *measured* tail
    // effect clearly exceeds the screen threshold must be flagged.
    // The slack keeps DES sampling noise from flipping the oracle.
    let threshold = 0.15;
    let slack = 0.15;
    for (level, &rps) in GRID_RPS.iter().enumerate() {
        let config = grid_config(rps);
        let plan = screen_hardware(&config, threshold).expect("screen runs");
        let des_level = &des[level * 16..(level + 1) * 16];
        let baseline = des_level.iter().copied().fold(f64::INFINITY, f64::min);
        for (cell, &measured) in des_level.iter().enumerate() {
            let effect = measured / baseline - 1.0;
            if effect >= threshold + slack {
                assert!(
                    plan.cells[cell].flagged,
                    "screen dropped a DES-significant cell: rps {rps}, cell {cell}, \
                     DES effect {effect:.3}"
                );
            }
        }
    }
}

/// Acceptance scenario: over a 2^5 factor space (the 4 hardware factors
/// × a load factor), the analytic screen flags few enough cells that a
/// screened sweep runs ≥5× fewer DES cells than full-factorial — and an
/// attribution fitted on only the screened-in hardware cells still
/// flags the same dominant factor as the full 16-cell fit.
#[test]
fn screened_sweep_keeps_the_dominant_factor() {
    // Stage 1: screen the 2^5 space analytically. Factor 5 ("load")
    // switches the arrival rate; bits 0-3 are the hardware factors.
    let low_rps = 350_000.0;
    let high_rps = 700_000.0;
    let plan = screen_cells(
        &["numa", "turbo", "dvfs", "nic", "load"],
        0.23,
        |levels: &[bool], _| {
            let rps = if levels[4] { high_rps } else { low_rps };
            let hw_index = levels[..4]
                .iter()
                .enumerate()
                .fold(0usize, |acc, (b, &on)| acc | (usize::from(on) << b));
            predict_cell(&grid_config(rps), HardwareConfig::from_index(hw_index))
        },
    )
    .expect("screen runs");
    println!("2^5 screen flagged {:?} of 32", plan.flagged);
    assert!(
        !plan.flagged.is_empty() && plan.flagged.len() * 5 <= 32,
        "screen must cut the DES bill ≥5×: flagged {} of 32",
        plan.flagged.len()
    );

    // Stage 2: DES the full 16-cell factorial once (the reference), and
    // refit on only the hardware cells a coarser screen keeps.
    let plan16 = screen_hardware(&grid_config(high_rps), 0.05).expect("screen runs");
    assert!(
        plan16.flagged.len() < 16,
        "hardware screen kept everything; acceptance needs a real cut"
    );
    let dataset = collect(&CollectionPlan {
        runs_per_config: 2,
        samples_per_run: 2_000,
        clients: 2,
        duration: SimDuration::from_millis(60),
        warmup: SimDuration::from_millis(15),
        seed: 2016,
        ..CollectionPlan::new(Arc::new(Memcached::default()), high_rps)
    });
    // "Same dominant factors" is judged on a shared estimand: the
    // paper's average per-factor impact (Figure 8), which both the
    // saturated and the reduced-order model can answer. Comparing raw
    // coefficients would compare different quantities — a saturated
    // dummy-coded main effect is the effect with everything else low,
    // an order-1 fit's is the average effect.
    let dominant = |result: &treadmill::inference::AttributionResult| -> Vec<&'static str> {
        let mut impacts = treadmill::inference::average_factor_impacts(result);
        impacts.sort_by(|a, b| {
            b.average_impact_us.abs().total_cmp(&a.average_impact_us.abs())
        });
        impacts.iter().take(2).map(|i| i.factor).collect()
    };
    let full = attribute(&dataset, 0.99, 100, 7);
    let screened = Dataset {
        cells: (0..16)
            .filter(|&i| plan16.cells[i].flagged)
            .map(|i| dataset.cells[i].clone())
            .collect(),
        target_rps: dataset.target_rps,
        workload_name: dataset.workload_name.clone(),
    };
    let graceful = attribute_graceful(&screened, 0.99, 100, 7);
    assert!(graceful.degraded, "subset fit must take the graceful path");
    let mut full_top = dominant(&full);
    let mut screened_top = dominant(&graceful.result);
    println!("dominant factors: full {full_top:?}, screened {screened_top:?}");
    full_top.sort_unstable();
    screened_top.sort_unstable();
    assert_eq!(
        full_top, screened_top,
        "screening changed the attribution headline"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Metamorphic: predicted p99 is monotone in arrival rate under the
    /// performance governor (dvfs high), where the clock is pinned and
    /// more load can only mean more queueing. The restriction is the
    /// physics, not a cop-out: under ondemand the model reproduces
    /// finding 3 — light load parks the clock low, so p99 legitimately
    /// *falls* as load wakes the governor up.
    #[test]
    fn analytic_p99_is_monotone_in_rate(
        cell in 0usize..16,
        low_rps in 50_000.0f64..400_000.0,
        step in 50_000.0f64..350_000.0,
    ) {
        let hw = HardwareConfig::from_index(cell | 0b0100);
        let a = predict_cell(&grid_config(low_rps), hw).unwrap();
        let b = predict_cell(&grid_config(low_rps + step), hw).unwrap();
        prop_assert!(
            b.p99_us >= a.p99_us - 1e-6,
            "p99 fell with load: {} -> {} (cell {cell})", a.p99_us, b.p99_us
        );
    }

    /// Metamorphic: relabeling (permuting) the factors permutes the
    /// flagged set through the bit mapping but changes nothing else.
    #[test]
    fn screen_is_invariant_under_factor_relabeling(
        rot in 1usize..4,
        threshold in 0.0f64..0.5,
    ) {
        let names = ["numa", "turbo", "dvfs", "nic"];
        let config = grid_config(700_000.0);
        let predict = |levels: &[bool]| {
            let index = names
                .iter()
                .enumerate()
                .fold(0usize, |acc, (canon, &_)| acc | (usize::from(levels[canon]) << canon));
            predict_cell(&config, HardwareConfig::from_index(index))
        };
        let base = screen_cells(&names, threshold, |levels, _| predict(levels)).unwrap();

        // Rotated factor order: bit b of a rotated index is the level
        // of factor (b + rot) % 4.
        let rotated_names: Vec<&str> = (0..4).map(|b| names[(b + rot) % 4]).collect();
        let rotated = screen_cells(&rotated_names, threshold, |levels, _| {
            let mut canonical = [false; 4];
            for (b, &on) in levels.iter().enumerate() {
                canonical[(b + rot) % 4] = on;
            }
            predict(&canonical)
        })
        .unwrap();

        let map_back = |index: usize| -> usize {
            (0..4).fold(0usize, |acc, b| {
                acc | (usize::from(index & (1 << b) != 0) << ((b + rot) % 4))
            })
        };
        let mut remapped: Vec<usize> = rotated.flagged.iter().map(|&i| map_back(i)).collect();
        remapped.sort_unstable();
        prop_assert_eq!(&remapped, &base.flagged, "flagged set moved under relabeling");
        for cell in &rotated.cells {
            let canon = &base.cells[map_back(cell.index)];
            prop_assert_eq!(cell.p99_us, canon.p99_us);
            prop_assert_eq!(cell.flagged, canon.flagged);
        }
    }

    /// Metamorphic: the screen is bit-identical run to run (no RNG, no
    /// clocks, no iteration-order hazards).
    #[test]
    fn screen_is_deterministic(rps in 100_000.0f64..800_000.0, threshold in 0.0f64..0.5) {
        let config = grid_config(rps);
        let a = screen_hardware(&config, threshold).unwrap();
        let b = screen_hardware(&config, threshold).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Cross-check: the analytic closed-form censoring prediction must
    /// agree exactly with `omission::correct_with_censored` on sample
    /// count and reliability rank. Integer-valued inputs keep the
    /// implementation's repeated subtraction exact, so the agreement is
    /// arithmetic, not approximate.
    #[test]
    fn censoring_prediction_matches_omission_correction(
        observed in prop::collection::vec(1u32..5_000, 0..40),
        censored in prop::collection::vec(1u32..20_000, 0..10),
        interval in 1u32..500,
    ) {
        let observed: Vec<f64> = observed.into_iter().map(f64::from).collect();
        let censored: Vec<f64> = censored.into_iter().map(f64::from).collect();
        let interval = f64::from(interval);
        let predicted = censoring_prediction(&observed, &censored, interval).unwrap();
        let corrected =
            treadmill::core::omission::correct_with_censored(&observed, &censored, interval);
        prop_assert_eq!(predicted.corrected_count, corrected.corrected.len());
        prop_assert!(
            (predicted.reliable_below - corrected.reliable_below).abs() < 1e-12,
            "reliability rank diverged: {} vs {}",
            predicted.reliable_below,
            corrected.reliable_below
        );
    }
}
