//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal, dependency-free implementation of
//! exactly the API surface it uses: [`RngCore`], [`Rng`], [`SeedableRng`],
//! [`rngs::SmallRng`] (xoshiro256++), and [`seq::SliceRandom`].
//!
//! Determinism is the contract that matters here: for a given seed the
//! generated stream is stable across platforms and releases, which is
//! what the simulation's reproducibility tests pin.

/// The core of a random number generator: a source of uniformly
/// distributed bits. Object-safe so simulations can hold
/// `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by expanding it with a PCG-style
    /// output function (matching rand_core's default expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod distributions_impl {
    /// Types that can be drawn uniformly by [`super::Rng::gen`].
    pub trait Standard: Sized {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }
    impl Standard for u8 {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 24) as u8
        }
    }
    impl Standard for u16 {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 16) as u16
        }
    }
    impl Standard for u32 {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }
    impl Standard for u128 {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }
    impl Standard for i64 {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as i64
        }
    }
    impl Standard for usize {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }
    impl Standard for bool {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
    /// 53-bit-precision uniform draw on `[0, 1)`.
    impl Standard for f64 {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    impl Standard for f32 {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Ranges usable with [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let u = <$t as Standard>::draw(rng);
                    self.start + u * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample<R: super::RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range in gen_range");
                    let u = <$t as Standard>::draw(rng);
                    lo + u * (hi - lo)
                }
            }
        )*};
    }
    float_range!(f32, f64);

    /// Unbiased uniform draw on `[0, span)` (span = 0 means the full
    /// 64-bit range) via Lemire's widening-multiply method.
    pub fn uniform_u64<R: super::RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        if span == 0 {
            return rng.next_u64();
        }
        loop {
            let x = rng.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            let lo = m as u64;
            if lo >= span || lo >= span.wrapping_neg() % span {
                return (m >> 64) as u64;
            }
        }
    }
}

pub use distributions_impl::SampleRange;

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: distributions_impl::Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: distributions_impl::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    ///
    /// Matches the algorithm rand 0.8 uses for `SmallRng` on 64-bit
    /// platforms. Not reproducible against the real crate's streams —
    /// every golden value in this repository was generated with this
    /// implementation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw xoshiro256++ state words, for checkpointing a
        /// generator mid-stream. Feed the result back through
        /// [`SmallRng::from_state`] to resume the exact stream position.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position previously
        /// captured with [`SmallRng::state`]. The all-zero state (a
        /// fixed point of xoshiro256++ that no seeded generator can
        /// reach) is nudged the same way as [`SeedableRng::from_seed`].
        pub fn from_state(s: [u64; 4]) -> Self {
            if s.iter().all(|&w| w == 0) {
                return <Self as SeedableRng>::from_seed([0u8; 32]);
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point; nudge it.
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random selection.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-export of the commonly `use`d items (mirrors `rand::prelude`).
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn f64_draws_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(5u32..10);
            assert!((5..10).contains(&x));
            let y = rng.gen_range(5u32..=10);
            assert!((5..=10).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = SmallRng::seed_from_u64(5);
        let dynr: &mut dyn RngCore = &mut rng;
        let x: f64 = dynr.gen();
        assert!((0.0..1.0).contains(&x));
        let y = dynr.gen_range(0..10u64);
        assert!(y < 10);
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            rng.next_u64();
        }
        let mut resumed = SmallRng::from_state(rng.state());
        let tail: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let resumed_tail: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
        // The all-zero fixed point gets the same nudge as from_seed.
        assert_eq!(SmallRng::from_state([0; 4]), SmallRng::from_seed([0u8; 32]));
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = SmallRng::seed_from_u64(6);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
