//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of serde the workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits (re-exported derive macros included) over a
//! simple JSON-shaped [`Value`] data model. `serde_json` in the sibling
//! vendor directory renders and parses that model.
//!
//! This is *not* API-compatible with real serde beyond what this
//! repository exercises; it trades the full Serializer/Deserializer
//! machinery for a concrete value tree, which is all a JSON-only
//! workspace needs.

use std::convert::TryFrom;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the data model every `Serialize` /
/// `Deserialize` implementation in this workspace round-trips through.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative integers (and any integer parsed with a sign).
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, insertion-ordered.
    Object(Map),
}

/// An insertion-ordered string-keyed map (the JSON object
/// representation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or replaces `key`, returning the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        fn split(e: &(String, Value)) -> (&String, &Value) {
            (&e.0, &e.1)
        }
        self.entries.iter().map(split)
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The object backing, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object backing, if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array backing, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric content widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric content as `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric content as `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Member access; returns `Null` for missing keys or non-objects
    /// (mirrors `serde_json::Value`'s `Index` behaviour).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// A (de)serialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can turn themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON-shaped data model.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
///
/// The lifetime parameter exists only for signature compatibility with
/// real serde bounds like `for<'de> Deserialize<'de>`; this shim always
/// deserialises from an owned tree.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from the JSON-shaped data model.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::deserialize_value(value).map(Some)
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| Error::custom("expected 2-tuple"))?;
        if arr.len() != 2 {
            return Err(Error::custom("expected 2-tuple"));
        }
        Ok((A::deserialize_value(&arr[0])?, B::deserialize_value(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| Error::custom("expected 3-tuple"))?;
        if arr.len() != 3 {
            return Err(Error::custom("expected 3-tuple"));
        }
        Ok((
            A::deserialize_value(&arr[0])?,
            B::deserialize_value(&arr[1])?,
            C::deserialize_value(&arr[2])?,
        ))
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("a".into(), Value::UInt(1)).is_none());
        assert_eq!(m.insert("a".into(), Value::UInt(2)), Some(Value::UInt(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("a"), Some(&Value::UInt(2)));
    }

    #[test]
    fn value_number_coercions() {
        assert_eq!(Value::UInt(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(3.0).as_u64(), Some(3));
        assert_eq!(Value::Float(3.5).as_u64(), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::Int(-1).as_i64(), Some(-1));
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(Value::Null["x"].is_null());
    }

    #[test]
    fn primitive_round_trips() {
        let v = 42u32.serialize_value();
        assert_eq!(u32::deserialize_value(&v).unwrap(), 42);
        let v = (-5i64).serialize_value();
        assert_eq!(i64::deserialize_value(&v).unwrap(), -5);
        let v = vec![1.0f64, 2.0].serialize_value();
        assert_eq!(Vec::<f64>::deserialize_value(&v).unwrap(), vec![1.0, 2.0]);
        let v = (1.5f64, "x".to_string()).serialize_value();
        let (a, b): (f64, String) = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!((a, b.as_str()), (1.5, "x"));
    }
}
