//! Offline stand-in for `serde_json`.
//!
//! Text ⇄ [`Value`] conversion over the value-tree data model defined by
//! the vendored `serde` shim. Covers the surface this workspace uses:
//! `from_str`, `to_string`, `to_string_pretty`, `to_value`, `from_value`,
//! the [`Value`]/[`Map`] types, and an [`Error`] that implements
//! `std::error::Error`.

use std::fmt;

pub use serde::{Map, Value};

/// A JSON (de)serialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Convenience alias matching `serde_json::Result`.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Parses JSON text into any deserialisable type.
pub fn from_str<T>(s: &str) -> Result<T>
where
    T: for<'de> serde::Deserialize<'de>,
{
    let value = parse_value(s)?;
    T::deserialize_value(&value).map_err(Error::from)
}

/// Converts a serialisable value into the [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T>(value: Value) -> Result<T>
where
    T: for<'de> serde::Deserialize<'de>,
{
    T::deserialize_value(&value).map_err(Error::from)
}

/// Renders compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Renders two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` round-trips f64 (shortest representation) and
                // always keeps a decimal point or exponent.
                out.push_str(&format!("{:?}", f));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.eat_keyword("\\u") {
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte onwards for one char.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{}`", text)))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{}`", text)))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{}`", text)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value = from_str(
            r#"{ "a": [1, -2, 3.5], "b": { "c": "x\ny" }, "d": null, "e": true }"#,
        )
        .unwrap();
        assert_eq!(v["a"][0], 1u64);
        assert_eq!(v["a"][1], -2i64);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["b"]["c"], "x\ny");
        assert!(v["d"].is_null());
        assert_eq!(v["e"], true);
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let src = r#"{"name":"treadmill","values":[0.5,12000.0],"nested":{"ok":true}}"#;
        let v: Value = from_str(src).unwrap();
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
        let pretty = to_string_pretty(&v).unwrap();
        let v3: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v3);
    }

    #[test]
    fn float_formatting_round_trips() {
        for f in [0.5, 12000.0, 1e-9, 1.25e300, -0.0, 3.141592653589793] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str::<Value>(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{} -> {}", f, s);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, "é😀");
    }
}
