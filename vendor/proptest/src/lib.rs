//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro
//! over range and `prop::collection::vec` strategies, `prop_assert!` /
//! `prop_assert_eq!`, and [`ProptestConfig::with_cases`]. Inputs are
//! drawn from a deterministic per-test PRNG (seeded from the test name
//! and case index), so failures reproduce exactly; there is no
//! shrinking — the failing input values are printed instead.

/// Test-runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; a slightly smaller default keeps
        // simulation-heavy properties fast without a config override.
        ProptestConfig { cases: 128 }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Splitmix64 step.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Builds the deterministic RNG for one test case (exposed for the
/// `proptest!` macro expansion).
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng {
        state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its range implementations.

    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % width) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi - lo) as u64;
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (width + 1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! sint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add((rng.next_u64() % width) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i64).wrapping_sub(lo as i64) as u64;
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (width + 1)) as $t)
                }
            }
        )*};
    }
    sint_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// A strategy yielding one fixed value (`Just` in real proptest).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// The size specification accepted by [`vec`]: an exact length or a
    /// length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let width = (self.hi_exclusive - self.lo) as u64;
            self.lo + (rng.next_u64() % width) as usize
        }
    }

    /// A strategy producing vectors of `element` draws.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prop {
    //! The `prop::` namespace as re-exported by the prelude.
    pub use crate::collection;
}

pub mod prelude {
    //! Everything a `proptest!` test file needs.
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics with the failing input
/// already printed by the harness).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Declares deterministic property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]`
/// running `cases` iterations with inputs sampled from the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($argpat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_rng(stringify!($name), __case);
                $(
                    let $argpat =
                        $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_rng("t", 3);
        let mut b = crate::test_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 5usize..10,
            y in -3.0f64..3.0,
            z in 0u64..=4,
            mut v in prop::collection::vec(0.0f64..1.0, 1..8),
        ) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3.0..3.0).contains(&y));
            prop_assert!(z <= 4);
            prop_assert!(!v.is_empty() && v.len() < 8);
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in v {
                prop_assert!((0.0..1.0).contains(&w));
            }
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(0u32..100, 6)) {
            prop_assert_eq!(v.len(), 6);
        }
    }
}
