//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote` available offline) that
//! expand `#[derive(Serialize, Deserialize)]` against the value-tree
//! traits in the vendored `serde` shim. Supports exactly the container
//! shapes this workspace uses:
//!
//! * named structs, with `#[serde(default)]`, `#[serde(default = "path")]`,
//!   `#[serde(skip, default)]` and `#[serde(skip_serializing_if = "path")]`
//!   field attributes;
//! * single-field (newtype) tuple structs;
//! * all-unit enums, serialised as the variant-name string;
//! * internally tagged enums (`#[serde(tag = "...", rename_all =
//!   "lowercase")]`) with named-field variants.
//!
//! Anything else panics at expansion time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------

#[derive(Default)]
struct SerdeAttrs {
    tag: Option<String>,
    rename_all: Option<String>,
    skip: bool,
    default: Option<DefaultKind>,
    skip_serializing_if: Option<String>,
}

enum DefaultKind {
    Trait,
    Path(String),
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

struct Variant {
    name: String,
    fields: Option<Vec<Field>>, // None = unit variant
}

enum Shape {
    NamedStruct(Vec<Field>),
    Newtype,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: SerdeAttrs,
    shape: Shape,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = take_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{}` is not supported", name);
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n != 1 {
                    panic!(
                        "serde shim derive: tuple struct `{}` has {} fields; only newtypes are supported",
                        name, n
                    );
                }
                Shape::Newtype
            }
            other => panic!("serde shim derive: unsupported struct body for `{}`: {:?}", name, other),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unsupported enum body for `{}`: {:?}", name, other),
        },
        other => panic!("serde shim derive: unsupported item kind `{}`", other),
    };
    Item { name, attrs, shape }
}

/// Consumes leading `#[...]` attributes, folding any `serde(...)`
/// directives into one `SerdeAttrs`; all other attributes (doc comments,
/// `#[default]`, ...) are skipped.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut out = SerdeAttrs::default();
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                parse_attr_body(g.stream(), &mut out);
                *i += 2;
            }
            _ => return out,
        }
    }
}

fn parse_attr_body(body: TokenStream, out: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            parse_serde_directives(g.stream(), out);
        }
        _ => {} // doc comment, other derive helper, etc.
    }
}

fn parse_serde_directives(body: TokenStream, out: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: unexpected token in serde attribute: {}", other),
        };
        i += 1;
        let value = if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            let lit = match &toks[i] {
                TokenTree::Literal(l) => string_literal(&l.to_string()),
                other => panic!("serde shim derive: expected string literal, got {}", other),
            };
            i += 1;
            Some(lit)
        } else {
            None
        };
        match (name.as_str(), value) {
            ("tag", Some(v)) => out.tag = Some(v),
            ("rename_all", Some(v)) => out.rename_all = Some(v),
            ("skip", None) => out.skip = true,
            ("default", None) => out.default = Some(DefaultKind::Trait),
            ("default", Some(v)) => out.default = Some(DefaultKind::Path(v)),
            ("skip_serializing_if", Some(v)) => out.skip_serializing_if = Some(v),
            (other, _) => panic!("serde shim derive: unsupported serde directive `{}`", other),
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

fn string_literal(raw: &str) -> String {
    let s = raw.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        s[1..s.len() - 1].to_string()
    } else {
        panic!("serde shim derive: expected a plain string literal, got {}", raw);
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, got {:?}", other),
    }
}

/// Skips one type expression: everything up to a comma at angle-bracket
/// depth zero (groups are single trees, so only `<`/`>` need tracking).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_visibility(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field `{}`, got {:?}", name, other),
        }
        skip_type(&toks, &mut i);
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        let _ = take_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_visibility(&toks, &mut i);
        skip_type(&toks, &mut i);
        n += 1;
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let _ = take_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple enum variant `{}` is not supported", name)
            }
            _ => None,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn rename(variant: &str, rule: &Option<String>) -> String {
    match rule.as_deref() {
        None => variant.to_string(),
        Some("lowercase") => variant.to_lowercase(),
        Some("snake_case") => {
            let mut out = String::new();
            for (idx, ch) in variant.chars().enumerate() {
                if ch.is_uppercase() {
                    if idx > 0 {
                        out.push('_');
                    }
                    out.extend(ch.to_lowercase());
                } else {
                    out.push(ch);
                }
            }
            out
        }
        Some(other) => panic!("serde shim derive: unsupported rename_all rule `{}`", other),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut __map = ::serde::Map::new();\n");
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                if let Some(pred) = &f.attrs.skip_serializing_if {
                    s.push_str(&format!(
                        "if !({pred})(&self.{n}) {{\n\
                         __map.insert(\"{n}\".to_string(), ::serde::Serialize::serialize_value(&self.{n}));\n}}\n",
                        n = f.name
                    ));
                } else {
                    s.push_str(&format!(
                        "__map.insert(\"{n}\".to_string(), ::serde::Serialize::serialize_value(&self.{n}));\n",
                        n = f.name
                    ));
                }
            }
            s.push_str("::serde::Value::Object(__map)");
            s
        }
        Shape::Newtype => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = rename(&v.name, &item.attrs.rename_all);
                match (&v.fields, &item.attrs.tag) {
                    (None, None) => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{wire}\".to_string()),\n",
                        v = v.name
                    )),
                    (None, Some(tag)) => arms.push_str(&format!(
                        "{name}::{v} => {{\n\
                         let mut __map = ::serde::Map::new();\n\
                         __map.insert(\"{tag}\".to_string(), ::serde::Value::String(\"{wire}\".to_string()));\n\
                         ::serde::Value::Object(__map)\n}}\n",
                        v = v.name
                    )),
                    (Some(fields), Some(tag)) => {
                        let pat: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut arm = format!("{name}::{v} {{ {p} }} => {{\n", v = v.name, p = pat.join(", "));
                        arm.push_str("let mut __map = ::serde::Map::new();\n");
                        arm.push_str(&format!(
                            "__map.insert(\"{tag}\".to_string(), ::serde::Value::String(\"{wire}\".to_string()));\n"
                        ));
                        for f in fields {
                            if f.attrs.skip {
                                continue;
                            }
                            arm.push_str(&format!(
                                "__map.insert(\"{n}\".to_string(), ::serde::Serialize::serialize_value({n}));\n",
                                n = f.name
                            ));
                        }
                        arm.push_str("::serde::Value::Object(__map)\n}\n");
                        arms.push_str(&arm);
                    }
                    (Some(_), None) => panic!(
                        "serde shim derive: untagged data-carrying enum `{}` is not supported",
                        name
                    ),
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// Expression rebuilding one field from object `__obj`, honouring
/// skip/default attributes.
fn field_expr(f: &Field, container: &str) -> String {
    if f.attrs.skip {
        return match &f.attrs.default {
            Some(DefaultKind::Path(p)) => format!("{p}()"),
            _ => "::std::default::Default::default()".to_string(),
        };
    }
    let missing = match &f.attrs.default {
        Some(DefaultKind::Trait) => "::std::default::Default::default()".to_string(),
        Some(DefaultKind::Path(p)) => format!("{p}()"),
        None => format!(
            "return ::std::result::Result::Err(::serde::Error::custom(\
             \"missing field `{n}` in {container}\"))",
            n = f.name
        ),
    };
    format!(
        "match __obj.get(\"{n}\") {{\n\
         ::std::option::Option::Some(__v) => ::serde::Deserialize::deserialize_value(__v)?,\n\
         ::std::option::Option::None => {missing},\n}}",
        n = f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = format!(
                "let __obj = value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n"
            );
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!("{n}: {e},\n", n = f.name, e = field_expr(f, name)));
            }
            s.push_str("})");
            s
        }
        Shape::Newtype => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(value)?))"
        ),
        Shape::Enum(variants) => match &item.attrs.tag {
            None => {
                let mut arms = String::new();
                for v in variants {
                    if v.fields.is_some() {
                        panic!(
                            "serde shim derive: untagged data-carrying enum `{}` is not supported",
                            name
                        );
                    }
                    let wire = rename(&v.name, &item.attrs.rename_all);
                    arms.push_str(&format!(
                        "\"{wire}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ));
                }
                format!(
                    "let __s = value.as_str().ok_or_else(|| \
                     ::serde::Error::custom(\"expected string for {name}\"))?;\n\
                     match __s {{\n{arms}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown {name} variant `{{}}`\", __other))),\n}}"
                )
            }
            Some(tag) => {
                let mut arms = String::new();
                for v in variants {
                    let wire = rename(&v.name, &item.attrs.rename_all);
                    match &v.fields {
                        None => arms.push_str(&format!(
                            "\"{wire}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        )),
                        Some(fields) => {
                            let mut arm =
                                format!("\"{wire}\" => ::std::result::Result::Ok({name}::{v} {{\n", v = v.name);
                            for f in fields {
                                arm.push_str(&format!(
                                    "{n}: {e},\n",
                                    n = f.name,
                                    e = field_expr(f, name)
                                ));
                            }
                            arm.push_str("}),\n");
                            arms.push_str(&arm);
                        }
                    }
                }
                format!(
                    "let __obj = value.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                     let __tag = __obj.get(\"{tag}\").and_then(::serde::Value::as_str)\
                     .ok_or_else(|| ::serde::Error::custom(\"missing `{tag}` tag for {name}\"))?;\n\
                     match __tag {{\n{arms}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown {name} variant `{{}}`\", __other))),\n}}"
                )
            }
        },
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize_value(value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
