//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness with the criterion API shape
//! this workspace's benches use: `Criterion`, benchmark groups with
//! `sample_size`/`throughput`, `bench_function`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//! Results are printed as median per-iteration time (plus element
//! throughput when configured); there is no statistical analysis, HTML
//! report, or baseline comparison.

use std::time::{Duration, Instant};

/// Re-exported opaque-value hint (prevents the optimiser from deleting
/// benchmarked work).
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&name.into(), sample_size, None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets how much measurement time to budget (accepted for API
    /// compatibility; this harness is sample-count driven).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(20);
        run_benchmark(&full, sample_size, self.throughput, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, collecting one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One untimed warm-up call sizes the per-sample iteration count so
    // fast benchmarks aren't dominated by timer resolution.
    let mut warmup = Bencher { samples: Vec::new(), sample_count: 1, iters_per_sample: 1 };
    f(&mut warmup);
    let once = warmup.samples.first().copied().unwrap_or(Duration::ZERO);
    let iters_per_sample = if once < Duration::from_micros(50) {
        (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
    } else {
        1
    };

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size.max(1)),
        sample_count: sample_size.max(1),
        iters_per_sample,
    };
    f(&mut bencher);

    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);

    let mut line = format!("{:<50} median {:>12}", name, format_seconds(median));
    if let Some(Throughput::Elements(n)) = throughput {
        if median > 0.0 {
            line.push_str(&format!("  ({:.3} Melem/s)", n as f64 / median / 1e6));
        }
    }
    if let Some(Throughput::Bytes(n)) = throughput {
        if median > 0.0 {
            line.push_str(&format!("  ({:.3} MiB/s)", n as f64 / median / (1024.0 * 1024.0)));
        }
    }
    println!("{}", line);
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{:.4} s", s)
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}
