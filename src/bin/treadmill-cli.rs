//! `treadmill-cli` — drive the reproduction from the command line.
//!
//! ```text
//! treadmill-cli run <config.json> [--runs N] [--seed S]
//!     Run a JSON-configured load test with the repeated-run procedure
//!     and print per-run and aggregated summaries.
//!
//! treadmill-cli sweep <config.json> --out DIR [--runs N] [--seed S] [--resume] [--ckpt-events K]
//!     Crash-tolerant repeated-run sweep: journals per-cell status to
//!     DIR/manifest.jsonl, checkpoints the running cell every K events,
//!     and writes atomic TSV artifacts. --resume skips done cells and
//!     resumes the in-flight one from its checkpoint, producing
//!     byte-identical artifacts to an uninterrupted sweep.
//!
//! treadmill-cli attribute <memcached|mcrouter> [--rps R] [--runs N] [--seed S]
//!     Run the 2^4 factorial campaign, print the Table IV-style
//!     coefficient table at p50/p95/p99 and the recommended config.
//!
//! treadmill-cli compare <config.json> <configA-index> <configB-index> [--runs N]
//!     Run two hardware configurations under the same JSON load test
//!     and compare their per-run p99s with Welch's t-test.
//!
//! treadmill-cli screen <config.json> [--threshold T] [--out DIR] [--runs N] [--seed S]
//!     Analytic two-stage screening: rank all 16 hardware cells with
//!     the closed-form M/G/k estimator, flag the ones whose predicted
//!     tail effect exceeds T, and (with --out) spend DES only on the
//!     flagged cells, writing screen.tsv + factorial.tsv.
//!
//! treadmill-cli screen <memcached|mcrouter> [--rps R] [--runs N] [--seed S]
//!     Randomised factor screening (§IV-B): which factors measurably
//!     move p99 at this load?
//!
//! treadmill-cli submit <spec.json> --addr HOST:PORT [--key K]
//!     Submit an experiment spec to a running treadmill-serve (with an
//!     optional idempotency key) and print the assigned job id.
//!
//! treadmill-cli status <job-id> --addr HOST:PORT
//!     Print a submitted experiment's status JSON.
//!
//! treadmill-cli fetch <job-id> --addr HOST:PORT [--artifact NAME] [--out FILE]
//!     Fetch a finished experiment's artifact (default: attribution)
//!     to stdout or FILE.
//! ```
//!
//! `sweep` installs SIGINT/SIGTERM handlers: an interrupted sweep
//! seals the in-flight checkpoint and flushes the journal before
//! exiting, so `--resume` continues it exactly like a crashed one.

use std::process::ExitCode;
use std::sync::Arc;

use treadmill::cluster::HardwareConfig;
use treadmill::core::{
    run_sweep_controlled, run_until_converged, ExperimentOptions, LoadTestConfig,
    SweepControl, SweepEvent, SweepOptions,
};
use treadmill::inference::{
    attribute, collect, screen_factors, CollectionPlan, ScreeningOptions,
    TABLE_IV_PERCENTILES,
};
use treadmill::sim::SimDuration;
use treadmill::stats::compare::welch_t_test;
use treadmill::workloads::{Mcrouter, Memcached, Workload};

struct Flags {
    positional: Vec<String>,
    runs: usize,
    rps: f64,
    seed: u64,
    out: Option<String>,
    resume: bool,
    ckpt_events: Option<u64>,
    addr: Option<String>,
    key: Option<String>,
    artifact: String,
    threshold: Option<f64>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        positional: Vec::new(),
        runs: 6,
        rps: 700_000.0,
        seed: 2016,
        out: None,
        resume: false,
        ckpt_events: None,
        addr: None,
        key: None,
        artifact: "attribution".to_string(),
        threshold: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--runs" => {
                flags.runs = iter
                    .next()
                    .ok_or("--runs needs a value")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
            }
            "--rps" => {
                flags.rps = iter
                    .next()
                    .ok_or("--rps needs a value")?
                    .parse()
                    .map_err(|e| format!("--rps: {e}"))?;
            }
            "--seed" => {
                flags.seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => {
                flags.out = Some(iter.next().ok_or("--out needs a directory")?.clone());
            }
            "--resume" => {
                flags.resume = true;
            }
            "--ckpt-events" => {
                flags.ckpt_events = Some(
                    iter.next()
                        .ok_or("--ckpt-events needs a value")?
                        .parse()
                        .map_err(|e| format!("--ckpt-events: {e}"))?,
                );
            }
            "--addr" => {
                flags.addr = Some(iter.next().ok_or("--addr needs host:port")?.clone());
            }
            "--key" => {
                flags.key = Some(iter.next().ok_or("--key needs a value")?.clone());
            }
            "--threshold" => {
                flags.threshold = Some(
                    iter.next()
                        .ok_or("--threshold needs a value")?
                        .parse()
                        .map_err(|e| format!("--threshold: {e}"))?,
                );
            }
            "--artifact" => {
                flags.artifact = iter
                    .next()
                    .ok_or("--artifact needs a name (attribution|summary)")?
                    .clone();
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            other => flags.positional.push(other.to_string()),
        }
    }
    Ok(flags)
}

fn usage() -> &'static str {
    "usage:\n  treadmill-cli run <config.json> [--runs N] [--seed S]\n  \
     treadmill-cli sweep <config.json> --out DIR [--runs N] [--seed S] [--resume] [--ckpt-events K]\n  \
     treadmill-cli attribute <memcached|mcrouter> [--rps R] [--runs N] [--seed S]\n  \
     treadmill-cli compare <config.json> <cfgA 0-15> <cfgB 0-15> [--runs N]\n  \
     treadmill-cli screen <config.json> [--threshold T] [--out DIR] [--runs N] [--seed S]\n  \
     treadmill-cli screen <memcached|mcrouter> [--rps R] [--runs N] [--seed S]\n  \
     treadmill-cli submit <spec.json> --addr HOST:PORT [--key K]\n  \
     treadmill-cli status <job-id> --addr HOST:PORT\n  \
     treadmill-cli fetch <job-id> --addr HOST:PORT [--artifact NAME] [--out FILE]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let command = args[0].clone();
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(&flags),
        "sweep" => cmd_sweep(&flags),
        "attribute" => cmd_attribute(&flags),
        "compare" => cmd_compare(&flags),
        "screen" => cmd_screen(&flags),
        "submit" => cmd_submit(&flags),
        "status" => cmd_status(&flags),
        "fetch" => cmd_fetch(&flags),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_config(path: &str) -> Result<LoadTestConfig, String> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    LoadTestConfig::from_json(&json).map_err(|e| e.to_string())
}

fn cmd_run(flags: &Flags) -> Result<(), String> {
    let path = flags
        .positional
        .first()
        .ok_or("run needs a config file path")?;
    let mut config = load_config(path)?;
    config.seed = flags.seed;
    let test = config.build().map_err(|e| e.to_string())?;
    println!(
        "running up to {} restarts of {} at {} RPS ...",
        flags.runs, config.workload.workload, config.target_rps
    );
    let outcome = run_until_converged(
        &test,
        ExperimentOptions {
            min_runs: 2.max(flags.runs / 3),
            max_runs: flags.runs,
            relative_tolerance: 0.05,
            confidence: 0.95,
        },
        0,
    );
    for (i, run) in outcome.runs.iter().enumerate() {
        println!(
            "  run {i}: p50 {:7.1}us  p95 {:7.1}us  p99 {:7.1}us  ({} samples)",
            run.p50, run.p95, run.p99, run.count
        );
    }
    println!(
        "converged: {} after {} runs",
        outcome.converged,
        outcome.num_runs()
    );
    println!(
        "estimate: p50 {:.1}us, p99 {:.1} ± {:.1}us\n",
        outcome.mean_p50, outcome.mean_p99, outcome.stddev_p99
    );
    // Full report (incl. pitfall health checks) for the last run.
    let last = test.run(outcome.num_runs() as u64 - 1);
    print!("{}", treadmill::core::render_report(&last, config.target_rps));
    Ok(())
}

fn cmd_sweep(flags: &Flags) -> Result<(), String> {
    let path = flags
        .positional
        .first()
        .ok_or("sweep needs a config file path")?;
    let out = flags.out.as_ref().ok_or("sweep needs --out DIR")?;
    let mut config = load_config(path)?;
    config.seed = flags.seed;
    let mut opts = SweepOptions {
        runs: flags.runs as u64,
        resume: flags.resume,
        ..SweepOptions::default()
    };
    if let Some(k) = flags.ckpt_events {
        opts.ckpt_events = k;
    }
    println!(
        "{} sweep of {} cells at {} RPS into {out} (checkpoint every {} events) ...",
        if flags.resume { "resuming" } else { "starting" },
        opts.runs,
        config.target_rps,
        opts.ckpt_events
    );
    // Ctrl-C / SIGTERM cancels at the next checkpoint boundary: the
    // checkpoint is sealed and the journal flushed, so `--resume`
    // continues exactly like a SIGKILL'd sweep — same plumbing the
    // server's drain path uses.
    treadmill::server::shutdown::install();
    let mut on_event = |event: SweepEvent| {
        if let SweepEvent::CellDone { cell, samples, p99_us } = event {
            println!("  cell {cell}: done ({samples} samples, p99 {p99_us:.1}us)");
        }
    };
    let mut ctrl = SweepControl {
        cancel: Some(treadmill::server::shutdown::flag()),
        progress: Some(&mut on_event),
    };
    let outcome = run_sweep_controlled(&config, std::path::Path::new(out), &opts, &mut ctrl)
        .map_err(|e| e.to_string())?;
    if let Some(cell) = outcome.resumed_cell {
        println!("  resumed cell {cell} from its checkpoint");
    }
    if !outcome.skipped.is_empty() {
        println!("  skipped {} already-done cells", outcome.skipped.len());
    }
    println!("  executed {} cells", outcome.executed.len());
    for warning in &outcome.warnings {
        println!("  note: {warning}");
    }
    if outcome.interrupted {
        println!(
            "interrupted: checkpoint sealed and journal flushed; \
             rerun with --resume to continue"
        );
    }
    println!("summary: {}", outcome.summary_path.display());
    Ok(())
}

fn addr_flag(flags: &Flags) -> Result<&str, String> {
    flags
        .addr
        .as_deref()
        .ok_or_else(|| "--addr HOST:PORT is required (see DIR/addr.txt)".to_string())
}

const CLIENT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

fn cmd_submit(flags: &Flags) -> Result<(), String> {
    let path = flags
        .positional
        .first()
        .ok_or("submit needs a spec file path")?;
    let addr = addr_flag(flags)?;
    let body = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut headers: Vec<(&str, &str)> =
        vec![("Content-Type", "application/json")];
    if let Some(key) = &flags.key {
        headers.push(("Idempotency-Key", key));
    }
    let resp = treadmill::server::client::request(
        addr,
        "POST",
        "/experiments",
        &headers,
        &body,
        CLIENT_TIMEOUT,
    )
    .map_err(|e| format!("submit to {addr} failed: {e}"))?;
    println!("{}", resp.text());
    if resp.status == 201 || resp.status == 200 {
        Ok(())
    } else {
        Err(format!("server rejected the spec (HTTP {})", resp.status))
    }
}

fn cmd_status(flags: &Flags) -> Result<(), String> {
    let id = flags.positional.first().ok_or("status needs a job id")?;
    let addr = addr_flag(flags)?;
    let resp = treadmill::server::client::request(
        addr,
        "GET",
        &format!("/experiments/{id}"),
        &[],
        &[],
        CLIENT_TIMEOUT,
    )
    .map_err(|e| format!("status from {addr} failed: {e}"))?;
    println!("{}", resp.text());
    if resp.status == 200 {
        Ok(())
    } else {
        Err(format!("HTTP {}", resp.status))
    }
}

fn cmd_fetch(flags: &Flags) -> Result<(), String> {
    let id = flags.positional.first().ok_or("fetch needs a job id")?;
    let addr = addr_flag(flags)?;
    let resp = treadmill::server::client::request(
        addr,
        "GET",
        &format!("/experiments/{id}/{}", flags.artifact),
        &[],
        &[],
        CLIENT_TIMEOUT,
    )
    .map_err(|e| format!("fetch from {addr} failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("HTTP {}: {}", resp.status, resp.text()));
    }
    match &flags.out {
        Some(out) => {
            std::fs::write(out, &resp.body)
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote {} bytes to {out}", resp.body.len());
        }
        None => print!("{}", resp.text()),
    }
    Ok(())
}

fn workload_by_name(name: &str) -> Result<Arc<dyn Workload>, String> {
    match name {
        "memcached" => Ok(Arc::new(Memcached::default())),
        "mcrouter" => Ok(Arc::new(Mcrouter::default())),
        other => Err(format!("unknown workload {other:?}")),
    }
}

fn cmd_attribute(flags: &Flags) -> Result<(), String> {
    let name = flags
        .positional
        .first()
        .ok_or("attribute needs a workload name")?;
    let workload = workload_by_name(name)?;
    let plan = CollectionPlan {
        runs_per_config: flags.runs,
        samples_per_run: 10_000,
        clients: 8,
        duration: SimDuration::from_millis(400),
        warmup: SimDuration::from_millis(100),
        seed: flags.seed,
        ..CollectionPlan::new(workload, flags.rps)
    };
    println!(
        "collecting {} experiments for {name} at {} RPS ...",
        plan.total_experiments(),
        flags.rps
    );
    let dataset = collect(&plan);
    println!(
        "{:<22} {:>18} {:>18} {:>18}",
        "factor", "p50 est (p)", "p95 est (p)", "p99 est (p)"
    );
    let models: Vec<_> = TABLE_IV_PERCENTILES
        .iter()
        .map(|&tau| attribute(&dataset, tau, 200, flags.seed))
        .collect();
    for t in 0..models[0].coefficients.len() {
        let mut line = format!("{:<22}", models[0].coefficients[t].term);
        for model in &models {
            let c = &model.coefficients[t];
            let star = if c.p_value < 0.05 { "*" } else { " " };
            line.push_str(&format!(" {:>+9.1} ({:.2}){star}", c.estimate, c.p_value));
        }
        println!("{line}");
    }
    let best = models.last().expect("models nonempty").best_config();
    println!("\nrecommended configuration for p99: {best} (index {})", best.index());
    Ok(())
}

fn cmd_screen(flags: &Flags) -> Result<(), String> {
    let target = flags
        .positional
        .first()
        .ok_or("screen needs a workload name or config.json")?;
    if target.ends_with(".json") {
        return cmd_screen_analytic(flags, target);
    }
    let workload = workload_by_name(target)?;
    let experiments = (flags.runs * 8).max(16);
    println!(
        "screening 4 factors with {experiments} randomised experiments at {} RPS ...",
        flags.rps
    );
    let results = screen_factors(
        &["numa", "turbo", "dvfs", "nic"],
        ScreeningOptions {
            experiments,
            alpha: 0.05,
            seed: flags.seed,
        },
        |levels: &[bool], i: usize| {
            let index = levels
                .iter()
                .enumerate()
                .fold(0usize, |acc, (b, &on)| acc | (usize::from(on) << b));
            treadmill::core::LoadTest::new(Arc::clone(&workload), flags.rps)
                .clients(4)
                .hardware(HardwareConfig::from_index(index))
                .duration(SimDuration::from_millis(200))
                .warmup(SimDuration::from_millis(50))
                .seed(flags.seed ^ (i as u64).wrapping_mul(0x9E37_79B9))
                .run(0)
                .aggregated
                .p99
        },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>12}",
        "factor", "p99@low", "p99@high", "p-value", "significant"
    );
    for r in &results {
        println!(
            "{:<8} {:>10.1}us {:>10.1}us {:>10.4} {:>12}",
            r.factor,
            r.mean_low,
            r.mean_high,
            r.p_value,
            if r.significant { "YES" } else { "no" }
        );
    }
    Ok(())
}

/// Two-stage analytic screening over a JSON-configured load test: the
/// closed-form M/G/k estimator ranks all 16 hardware cells, and (with
/// `--out`) the DES stage is spent only on the flagged ones.
fn cmd_screen_analytic(flags: &Flags, path: &str) -> Result<(), String> {
    let mut config = load_config(path)?;
    config.seed = flags.seed;
    let threshold = flags
        .threshold
        .or(config.screen.map(|s| s.threshold))
        .unwrap_or_else(|| treadmill::core::ScreenSpec::default().threshold);
    let plan = treadmill::inference::screen_hardware(&config, threshold)
        .map_err(|e| e.to_string())?;
    println!(
        "analytic screen of 16 hardware cells at {} RPS (threshold {:.3}):",
        config.target_rps, threshold
    );
    println!(
        "{:<5} {:<24} {:>10} {:>10} {:>10} {:>6} {:>8} {:>8}",
        "cell", "config", "p50", "p95", "p99", "util", "effect", "flagged"
    );
    for &index in &plan.ranking {
        let cell = &plan.cells[index];
        println!(
            "{:<5} {:<24} {:>8.1}us {:>8.1}us {:>8.1}us {:>6.2} {:>8.3} {:>8}",
            cell.index,
            HardwareConfig::from_index(cell.index).to_string(),
            cell.p50_us,
            cell.p95_us,
            cell.p99_us,
            cell.utilization,
            cell.tail_effect,
            if cell.flagged { "YES" } else { "no" }
        );
    }
    println!(
        "flagged {} of {} cells (baseline p99 {:.1}us)",
        plan.flagged.len(),
        plan.cells.len(),
        plan.baseline_p99_us
    );
    let Some(out) = &flags.out else {
        println!("(pass --out DIR to DES-simulate the flagged cells)");
        return Ok(());
    };
    let mut opts = SweepOptions {
        runs: flags.runs as u64,
        resume: flags.resume,
        ..SweepOptions::default()
    };
    if let Some(k) = flags.ckpt_events {
        opts.ckpt_events = k;
    }
    println!(
        "DES stage: simulating {} flagged cells into {out} ...",
        plan.flagged.len()
    );
    let outcome = treadmill::core::run_screened_sweep(
        &config,
        std::path::Path::new(out),
        &opts,
        &plan.to_sweep_plan(),
    )
    .map_err(|e| e.to_string())?;
    for cell in &outcome.cells {
        println!(
            "  cell {:2}: p99 {:8.1}us ({} samples over {} runs)",
            cell.index, cell.p99_us, cell.samples, cell.runs
        );
    }
    for warning in &outcome.warnings {
        println!("  note: {warning}");
    }
    println!(
        "simulated {} of 16 cells ({} screened out)",
        outcome.simulated.len(),
        outcome.screened_out.len()
    );
    if let Some(screen_path) = &outcome.screen_path {
        println!("screen: {}", screen_path.display());
    }
    println!("factorial: {}", outcome.factorial_path.display());
    Ok(())
}

fn cmd_compare(flags: &Flags) -> Result<(), String> {
    if flags.positional.len() < 3 {
        return Err("compare needs <config.json> <cfgA> <cfgB>".to_string());
    }
    let mut config = load_config(&flags.positional[0])?;
    config.seed = flags.seed;
    let a_index: usize = flags.positional[1]
        .parse()
        .map_err(|e| format!("cfgA: {e}"))?;
    let b_index: usize = flags.positional[2]
        .parse()
        .map_err(|e| format!("cfgB: {e}"))?;
    if a_index > 15 || b_index > 15 {
        return Err("configuration indices must be 0..=15".to_string());
    }
    let base = config.build().map_err(|e| e.to_string())?;
    let run_arm = |idx: usize| -> Vec<f64> {
        let test = base.clone().hardware(HardwareConfig::from_index(idx));
        (0..flags.runs as u64)
            .map(|i| test.run(i).aggregated.p99)
            .collect()
    };
    println!("running {} restarts per configuration ...", flags.runs);
    let a = run_arm(a_index);
    let b = run_arm(b_index);
    let cmp = welch_t_test(&a, &b);
    println!(
        "config {a_index} ({}): mean p99 {:.1}us",
        HardwareConfig::from_index(a_index),
        cmp.mean_a
    );
    println!(
        "config {b_index} ({}): mean p99 {:.1}us",
        HardwareConfig::from_index(b_index),
        cmp.mean_b
    );
    println!(
        "difference {:+.1}us ({:+.1}%), t = {:.2}, df = {:.1}, p = {:.4}",
        cmp.difference,
        cmp.relative_change() * 100.0,
        cmp.t_statistic,
        cmp.degrees_of_freedom,
        cmp.p_value
    );
    if cmp.is_significant(0.05) {
        println!("verdict: statistically significant at the 5% level");
    } else {
        println!("verdict: NOT significant — run more restarts before concluding anything");
    }
    Ok(())
}
