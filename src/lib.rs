//! # Treadmill — a Rust reproduction of the ISCA 2016 paper
//!
//! *"Treadmill: Attributing the Source of Tail Latency through Precise
//! Load Testing and Statistical Inference"* (Zhang, Meisner, Mars,
//! Tang).
//!
//! This facade crate re-exports the whole reproduction:
//!
//! * [`core`] — the Treadmill load tester: precisely-timed open-loop
//!   control, adaptive-histogram aggregation, multi-instance procedure,
//!   repeated-run hysteresis mitigation;
//! * [`cluster`] — the simulated datacenter substrate (server with
//!   NUMA/Turbo/DVFS/NIC-RSS models, network, client machines, tcpdump
//!   ground truth) standing in for the paper's production testbed;
//! * [`stats`] — histograms, quantiles, quantile regression, bootstrap
//!   inference, pseudo-R²;
//! * [`workloads`] — Memcached and mcrouter service models with JSON
//!   configuration;
//! * [`baselines`] — the flawed prior load testers (YCSB-, Faban-,
//!   CloudSuite-, Mutilate-like) used in the comparison experiments;
//! * [`inference`] — the factorial attribution pipeline (Table IV,
//!   Figures 7–12);
//! * [`sim`] — the discrete-event engine underneath it all;
//! * [`server`] — load testing as a service: the crash-tolerant
//!   `treadmill-serve` HTTP daemon (journaled jobs, admission
//!   control, graceful drain) and its minimal client.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use treadmill::core::LoadTest;
//! use treadmill::workloads::Memcached;
//!
//! let report = LoadTest::new(Arc::new(Memcached::default()), 100_000.0)
//!     .clients(4)
//!     .seed(1)
//!     .run(0);
//! println!(
//!     "p50 {:.0}us  p99 {:.0}us  (tcpdump p99 {:.0}us)",
//!     report.aggregated.p50,
//!     report.aggregated.p99,
//!     report.ground_truth.quantile_us(0.99),
//! );
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the binaries that regenerate every table
//! and figure of the paper.

#![forbid(unsafe_code)]
// Unit tests unwrap freely and assert exact float equality: bit-exact
// reproducibility is the property under test. Library code is held to
// the workspace lint table (see DESIGN.md, "Static analysis").
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::float_cmp, clippy::cast_possible_truncation)
)]
#![warn(missing_docs)]

pub use treadmill_baselines as baselines;
pub use treadmill_cluster as cluster;
pub use treadmill_core as core;
pub use treadmill_inference as inference;
pub use treadmill_server as server;
pub use treadmill_sim_core as sim;
pub use treadmill_stats as stats;
pub use treadmill_workloads as workloads;
