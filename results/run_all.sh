#!/bin/bash
# Regenerates every table and figure at default scale.
cd /root/repo
for bin in tab01 tab02 tab03 fig01 fig02 fig03 fig04 fig05 fig06 tab04 fig07 fig08 fig09 fig10 fig11 fig12 ext01_interarrival ext02_anova ext03_aggregation ext04_histogram ext05_hysteresis ext06_omission ext07_freqtrace ext08_interactions; do
  echo "=== $bin ($(date +%H:%M:%S)) ===" >> results/progress.log
  ./target/release/$bin > results/$bin.tsv 2> results/$bin.err
done
echo "ALL DONE $(date +%H:%M:%S)" >> results/progress.log
