#!/bin/bash
# Regenerates every table and figure at default scale.
#
# Artifacts are written atomically (tmp + sync + rename) and carry a
# provenance header line, so a run killed mid-binary never leaves a
# half-written .tsv behind and every table records the seed/version
# that produced it.
cd /root/repo
VERSION=$(grep -m1 '^version' Cargo.toml | cut -d'"' -f2)
for bin in tab01 tab02 tab03 fig01 fig02 fig03 fig04 fig05 fig06 tab04 fig07 fig08 fig09 fig10 fig11 fig12 ext01_interarrival ext02_anova ext03_aggregation ext04_histogram ext05_hysteresis ext06_omission ext07_freqtrace ext08_interactions; do
  echo "=== $bin ($(date +%H:%M:%S)) ===" >> results/progress.log
  tmp="results/$bin.tsv.tmp"
  echo "# seed=42 config_hash=default version=$VERSION generator=$bin" > "$tmp"
  if ./target/release/$bin >> "$tmp" 2> results/$bin.err; then
    sync "$tmp"
    mv "$tmp" "results/$bin.tsv"
  else
    echo "FAILED $bin (exit $?); partial output left in $tmp" >> results/progress.log
  fi
done
echo "ALL DONE $(date +%H:%M:%S)" >> results/progress.log
