#!/usr/bin/env python3
"""Render the regenerated TSVs in this directory as PNG figures.

Usage: python3 results/plot.py [results_dir]

Requires matplotlib; every figure is optional — missing TSVs are
skipped. Layout mirrors the paper's figures so side-by-side comparison
is easy.
"""

import csv
import os
import sys
from collections import defaultdict

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")


def read_tsv(path):
    rows = []
    with open(path) as fh:
        header = None
        for line in fh:
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if header is None:
                header = parts
                continue
            rows.append(dict(zip(header, parts)))
    return rows


def save(fig, outdir, name):
    path = os.path.join(outdir, name)
    fig.savefig(path, dpi=130, bbox_inches="tight")
    plt.close(fig)
    print(f"wrote {path}")


def plot_cdf_figure(rows, title, outdir, name):
    series = defaultdict(list)
    for r in rows:
        series[r["series"]].append((float(r["latency_us"]), float(r["cdf"])))
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for label, pts in series.items():
        pts.sort()
        style = "--" if label.startswith("tcpdump") else "-"
        ax.plot([p[0] for p in pts], [p[1] for p in pts], style, label=label)
    ax.set_xlabel("latency (us)")
    ax.set_ylabel("CDF")
    ax.set_title(title)
    ax.legend(fontsize=7)
    ax.grid(alpha=0.3)
    save(fig, outdir, name)


def plot_fig01(rows, outdir):
    series = defaultdict(list)
    for r in rows:
        series[r["series"]].append((int(r["outstanding"]), float(r["cdf"])))
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for label, pts in series.items():
        pts.sort()
        ax.plot([p[0] for p in pts], [p[1] for p in pts], label=label)
    ax.set_xlabel("outstanding requests")
    ax.set_ylabel("CDF")
    ax.set_xscale("log")
    ax.set_title("Figure 1: outstanding requests, open vs closed loop")
    ax.legend()
    ax.grid(alpha=0.3)
    save(fig, outdir, "fig01.png")


def plot_fig04(rows, outdir):
    series = defaultdict(list)
    for r in rows:
        series[r["run"]].append((int(r["samples"]), float(r["p99_us"])))
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for label, pts in sorted(series.items()):
        pts.sort()
        ax.plot([p[0] for p in pts], [p[1] for p in pts], label=label)
    ax.set_xlabel("samples")
    ax.set_ylabel("p99 latency (us)")
    ax.set_title("Figure 4: per-run p99 convergence (hysteresis)")
    ax.legend()
    ax.grid(alpha=0.3)
    save(fig, outdir, "fig04.png")


def plot_config_bars(rows, title, outdir, name):
    # rows: load, percentile, config, label, latency_us
    for load in sorted({r["load"] for r in rows}):
        sub = [r for r in rows if r["load"] == load]
        percentiles = sorted({r["percentile"] for r in sub})
        fig, ax = plt.subplots(figsize=(11, 4.5))
        width = 0.05
        for ci in range(16):
            values = []
            for p in percentiles:
                match = [
                    float(r["latency_us"])
                    for r in sub
                    if r["percentile"] == p and int(r["config"]) == ci
                ]
                values.append(match[0] if match else 0.0)
            xs = [i + ci * width for i in range(len(percentiles))]
            ax.bar(xs, values, width=width, label=str(ci) if ci < 8 else None)
        ax.set_xticks([i + 8 * width for i in range(len(percentiles))])
        ax.set_xticklabels(percentiles)
        ax.set_ylabel("latency (us)")
        ax.set_title(f"{title} — {load} load (bars = configs 0..15)")
        ax.grid(alpha=0.3, axis="y")
        save(fig, outdir, f"{name}_{load}.png")


def plot_impacts(rows, title, outdir, name):
    fig, axes = plt.subplots(1, 2, figsize=(11, 4), sharey=True)
    for ax, load in zip(axes, ["low", "high"]):
        sub = [r for r in rows if r["load"] == load]
        percentiles = sorted({r["percentile"] for r in sub})
        factors = ["numa", "turbo", "dvfs", "nic"]
        width = 0.18
        for fi, factor in enumerate(factors):
            values = [
                float(r["impact_us"])
                for p in percentiles
                for r in sub
                if r["percentile"] == p and r["factor"] == factor
            ]
            xs = [i + fi * width for i in range(len(percentiles))]
            ax.bar(xs, values, width=width, label=factor)
        ax.set_xticks([i + 1.5 * width for i in range(len(percentiles))])
        ax.set_xticklabels(percentiles)
        ax.axhline(0, color="k", linewidth=0.6)
        ax.set_title(f"{load} load")
        ax.grid(alpha=0.3, axis="y")
    axes[0].set_ylabel("avg latency impact (us)")
    axes[0].legend()
    fig.suptitle(title)
    save(fig, outdir, name)


def plot_fig11(rows, outdir):
    fig, ax = plt.subplots(figsize=(7, 4.5))
    groups = defaultdict(list)
    for r in rows:
        groups[f'{r["workload"]}-{r["load"]}'].append(
            (r["percentile"], float(r["pseudo_r2"]))
        )
    for label, pts in sorted(groups.items()):
        ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="o", label=label)
    ax.axhline(0.9, color="gray", linestyle=":", label="paper floor (0.90)")
    ax.set_ylabel("pseudo-R²")
    ax.set_ylim(0, 1)
    ax.set_title("Figure 11: goodness-of-fit")
    ax.legend(fontsize=8)
    ax.grid(alpha=0.3)
    save(fig, outdir, "fig11.png")


def plot_fig12(rows, outdir):
    arms = defaultdict(list)
    for r in rows:
        arms[r["arm"]].append(float(r["p99_us"]))
    fig, ax = plt.subplots(figsize=(6, 4.5))
    ax.boxplot(
        [arms.get("before", []), arms.get("after", [])],
        tick_labels=["before (random configs)", "after (recommended)"],
    )
    ax.set_ylabel("p99 latency (us)")
    ax.set_title("Figure 12: tuning outcome")
    ax.grid(alpha=0.3, axis="y")
    save(fig, outdir, "fig12.png")


def main():
    outdir = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(__file__) or "."
    plots = {
        "fig01.tsv": plot_fig01,
        "fig04.tsv": plot_fig04,
        "fig11.tsv": plot_fig11,
        "fig12.tsv": plot_fig12,
    }
    for tsv, fn in plots.items():
        path = os.path.join(outdir, tsv)
        if os.path.exists(path):
            fn(read_tsv(path), outdir)
    for tsv, (title, name) in {
        "fig05.tsv": ("Figure 5: testers vs tcpdump, 10% util", "fig05.png"),
        "fig06.tsv": ("Figure 6: testers vs tcpdump, high util", "fig06.png"),
    }.items():
        path = os.path.join(outdir, tsv)
        if os.path.exists(path):
            plot_cdf_figure(read_tsv(path), title, outdir, name)
    for tsv, (title, name) in {
        "fig07.tsv": ("Figure 7: memcached per-config estimates", "fig07"),
        "fig09.tsv": ("Figure 9: mcrouter per-config estimates", "fig09"),
    }.items():
        path = os.path.join(outdir, tsv)
        if os.path.exists(path):
            plot_config_bars(read_tsv(path), title, outdir, name)
    for tsv, (title, name) in {
        "fig08.tsv": ("Figure 8: memcached factor impacts", "fig08.png"),
        "fig10.tsv": ("Figure 10: mcrouter factor impacts", "fig10.png"),
    }.items():
        path = os.path.join(outdir, tsv)
        if os.path.exists(path):
            plot_impacts(read_tsv(path), title, outdir, name)


if __name__ == "__main__":
    main()
